"""Sweep execution engine: process-pool fan-out plus an on-disk result cache.

The engine runs :class:`~repro.analysis.plan.RunSpec`s and returns
:class:`~repro.stats.snapshot.MachineSnapshot`s, resolving each run through
three tiers:

1. **In-memory cache** — within one process, repeated requests for the same
   spec return the identical snapshot object (the contract the figure
   generators rely on).
2. **On-disk cache** — snapshots are serialized to JSON under a cache
   directory, content-addressed by the spec's SHA-256 digest combined with
   the library version and serialization schema, so repeated benchmark or
   figure invocations across processes (and across pytest sessions) are
   near-free.  Entries from older code versions simply miss.
3. **Execution** — cache misses are simulated, either inline or fanned out
   over a :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive
   only the picklable spec and rebuild the workload stream deterministically
   from it, so parallel results are bit-identical to serial ones.

When a ``trace_dir`` is configured, execution replays recorded binary
traces (:mod:`repro.trace.binary`) instead of regenerating streams:
specs whose workload stream has been captured (one trace per distinct
stream — every policy/filter-size variant of a workload shares it) are
executed via :meth:`~repro.analysis.plan.RunSpec.with_trace`, which is
bit-identical to generation but skips the generator's RNG work.  With
``record_traces`` enabled, missing traces are captured on first use, in
the parent process so that pool workers never race to write one file.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import faults
from repro.analysis.plan import RunSpec, SweepPlan
from repro.analysis.retrypool import RetryPolicy, run_tasks
from repro.errors import ConfigurationError, ExecutionError
from repro.ioutil import atomic_write_json
from repro.stats.snapshot import SNAPSHOT_SCHEMA_VERSION, MachineSnapshot
from repro.system.simulator import simulate
from repro.trace.binary import write_trace_v2
from repro.version import __version__

#: Bump to invalidate every on-disk cache entry written by older engines.
CACHE_SCHEMA_VERSION = 1

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the package's source files, computed once per process.

    Folding this into every cache key means *any* source edit — a latency
    constant, a seed function, a protocol fix — silently invalidates old
    snapshots, without requiring anyone to remember a manual version bump.
    Sources unreadable (e.g. a frozen deployment) degrade to the library
    version alone.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        try:
            for path in sorted(package_root.rglob("*.py")):
                digest.update(str(path.relative_to(package_root)).encode("utf-8"))
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
            _CODE_FINGERPRINT = digest.hexdigest()
        except OSError:
            _CODE_FINGERPRINT = "source-unavailable"
    return _CODE_FINGERPRINT


def execute_run_spec(spec: RunSpec) -> MachineSnapshot:
    """Simulate one spec from scratch and return its snapshot.

    Module-level (and therefore picklable) so it can be shipped to pool
    workers; the spec rebuilds its machine configuration and access stream
    deterministically on whatever process it lands.
    """
    if spec.engine == "batched":
        # The batched engine replays columnar chunks; pre-chunked
        # ingestion (v3 blocked traces stream stored blocks directly)
        # keeps per-record Python work out of the replay loop.
        accesses = spec.access_chunks()
    else:
        accesses = spec.access_stream()
    result = simulate(spec.config(), accesses, spec.workload_name, engine=spec.engine)
    return result.snapshot


def _sweep_fault_key(index: int, spec: RunSpec) -> str:
    """The ``sweep.run`` fault-site key naming one pending run."""
    return f"#{index}:{spec.workload_name}:{spec.policy}:pf{spec.pf_size}"


def _run_task(task):
    """Pool worker body: execute one pending spec, timed.

    *task* is ``(index, effective_spec)``.  The :func:`faults.fire` call
    is the chaos hook standing in for real worker failures — with no
    plan installed it is a no-op.
    """
    index, spec = task
    faults.fire("sweep.run", key=_sweep_fault_key(index, spec))
    started = time.perf_counter()
    snapshot = execute_run_spec(spec)
    return snapshot, time.perf_counter() - started


#: File suffix per recordable trace format.  The suffix is load-bearing:
#: :meth:`SweepExecutor.trace_path_for` picks replay sources by it, so a
#: recording whose name disagrees with its encoding would silently send
#: every replay down the wrong decode path.
TRACE_SUFFIXES = {"binary": ".rpt2", "blocked": ".rpt3"}


def trace_file_name(spec: RunSpec, format: str = "binary") -> str:
    """File name of *spec*'s recorded workload stream in a trace directory.

    Combines the stream digest (shared by every policy/filter-size
    variant of one workload) with the code fingerprint, so any source
    edit — a generator tweak, a seed change — silently retires old
    recordings instead of replaying streams the current code would no
    longer produce (which would poison the snapshot cache under the new
    code's identity).  The suffix follows *format* (``.rpt2`` for v2
    ``"binary"``, ``.rpt3`` for v3 ``"blocked"``).
    """
    suffix = TRACE_SUFFIXES.get(format)
    if suffix is None:
        raise ConfigurationError(
            f"unknown trace format {format!r}; expected one of "
            f"{sorted(TRACE_SUFFIXES)}"
        )
    return f"{spec.stream_digest()}-{code_fingerprint()[:12]}{suffix}"


def record_spec_trace(
    spec: RunSpec,
    path: Union[str, Path],
    format: str = "binary",
    epoch_records: Optional[int] = None,
    block_records: Optional[int] = None,
) -> int:
    """Capture *spec*'s workload stream as a trace file at *path*.

    *format* is ``"binary"`` (v2, compact — the default) or
    ``"blocked"`` (v3 columnar, fastest to replay on the batched
    engine); *epoch_records* (blocked only) adds the v3.1 seekable
    epoch index.  Returns the number of records written.  The write is
    atomic, so a reader (or a concurrent recorder of the same stream)
    never sees a partial trace.

    A *path* whose suffix names the other format is rejected: replay
    source selection goes by suffix, so a mismatched recording would be
    decoded as the wrong format on every future replay.
    """
    target = Path(path)
    expected = TRACE_SUFFIXES.get(format)
    if expected is None:
        raise ConfigurationError(
            f"unknown trace format {format!r}; expected one of "
            f"{sorted(TRACE_SUFFIXES)}"
        )
    if target.suffix in TRACE_SUFFIXES.values() and target.suffix != expected:
        raise ConfigurationError(
            f"trace path {target.name!r} has the {target.suffix!r} suffix "
            f"but format {format!r} writes {expected!r}; name the file "
            f"with trace_file_name(spec, format) to keep them consistent"
        )
    if format == "blocked":
        from repro.trace.binary import DEFAULT_BLOCK_RECORDS, write_trace_v3

        return write_trace_v3(
            path,
            spec.access_stream(),
            block_records=block_records or DEFAULT_BLOCK_RECORDS,
            epoch_records=epoch_records,
        )
    if epoch_records is not None or block_records is not None:
        raise ConfigurationError(
            "epoch_records/block_records require the 'blocked' format; "
            "the sequential formats have neither blocks nor epochs"
        )
    return write_trace_v2(path, spec.access_stream())


def cache_key(spec: RunSpec) -> str:
    """Content-addressed cache key: spec digest + code/schema versions."""
    payload = "|".join(
        (
            spec.cache_token(),
            f"lib={__version__}",
            f"code={code_fingerprint()}",
            f"cache_schema={CACHE_SCHEMA_VERSION}",
            f"snapshot_schema={SNAPSHOT_SCHEMA_VERSION}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`SnapshotCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0
    quarantined: int = 0


def _snapshot_digest(snapshot_dict: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a snapshot dict."""
    canonical = json.dumps(
        snapshot_dict, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SnapshotCache:
    """On-disk, content-addressed store of serialized machine snapshots.

    Layout: ``<root>/<key[:2]>/<key>.json`` where *key* is
    :func:`cache_key`'s SHA-256 hex digest.  Each file holds the snapshot
    plus the originating spec description and a ``sha256`` digest of the
    snapshot payload, so the cache directory is self-describing and
    every load is verified end-to-end.  Writes are atomic (temp file +
    ``os.replace``) so concurrent executors never observe torn entries.

    The cache is self-healing: an entry that fails to parse or whose
    digest disagrees with its payload is *quarantined* — renamed to
    ``<key>.json.corrupt`` and counted in ``stats.quarantined`` — so a
    damaged file is inspected once, preserved for forensics, and never
    re-read on subsequent loads (previously it sat in place and was
    re-parsed and re-rejected forever).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, spec: RunSpec) -> Path:
        """Return the file this spec's snapshot lives at (existing or not)."""
        key = cache_key(spec)
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside as ``<name>.corrupt``."""
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            return  # racing loader already moved it; nothing to preserve
        self.stats.quarantined += 1

    def load(self, spec: RunSpec) -> Optional[MachineSnapshot]:
        """Return the verified cached snapshot for *spec*, or ``None``.

        Any damage — unparsable JSON, missing fields, a digest mismatch
        from a torn or bit-rotted write — quarantines the entry and
        reports a miss, so the next sweep re-executes and rewrites it.
        """
        path = self.path_for(spec)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            data = json.loads(text)
            stored_digest = data["sha256"]
            snapshot_dict = data["snapshot"]
            if _snapshot_digest(snapshot_dict) != stored_digest:
                raise ValueError("snapshot payload digest mismatch")
            snapshot = MachineSnapshot.from_dict(snapshot_dict)
        except Exception:
            # Corrupt, truncated or stale-schema entry: quarantine it and
            # treat as a miss.
            self.stats.invalid += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        self.stats.hits += 1
        return snapshot

    def store(self, spec: RunSpec, snapshot: MachineSnapshot) -> Path:
        """Atomically persist *snapshot*, digest-stamped, under *spec*'s key."""
        path = self.path_for(spec)
        snapshot_dict = snapshot.to_dict()
        atomic_write_json(path, {
            "spec": spec.describe(),
            "snapshot": snapshot_dict,
            "sha256": _snapshot_digest(snapshot_dict),
        })
        self.stats.stores += 1
        return path

    def entry_count(self) -> int:
        """Number of snapshot files currently in the cache."""
        return sum(1 for _ in self.root.glob("*/*.json"))


#: Where a sweep result came from.
SOURCE_EXECUTED = "executed"
SOURCE_REPLAYED = "replayed"
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"


@dataclass
class SweepResult:
    """One finished run of a plan: the spec, its snapshot and provenance."""

    spec: RunSpec
    snapshot: MachineSnapshot
    source: str
    duration_s: float = 0.0


@dataclass(frozen=True)
class RunFailure:
    """One spec that permanently failed within a sweep.

    ``kind`` is ``"error"`` (the run raised), ``"timeout"`` (it blew its
    per-run deadline), ``"worker-lost"`` (its worker process died) or
    ``"interrupted"`` (Ctrl-C before it finished); ``attempts`` counts
    tries actually charged to this spec.
    """

    spec: RunSpec
    kind: str
    attempts: int
    error: str


@dataclass
class SweepOutcome:
    """All results of one :meth:`SweepExecutor.run_plan` invocation.

    ``results`` holds the runs that completed (in plan order); with a
    ``keep_going`` executor — or after an interrupt — that may be a
    subset, and ``failures`` accounts for every spec that did not make
    it.  ``plan_size`` is the number of specs the plan asked for —
    the denominator of :attr:`cached_fraction` — so failed runs count
    as uncached instead of silently shrinking the ratio's base.  The
    retry counters aggregate what fault tolerance had to do: they are
    zero on a healthy sweep and feed the ``bench:"faults"`` trajectory
    in chaos runs.
    """

    plan_name: str
    plan_size: int = 0
    results: List[SweepResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    failures: List[RunFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        """True when every spec of the plan completed."""
        return not self.failures and not self.interrupted

    def __len__(self) -> int:
        return len(self.results)

    def counts_by_source(self) -> Dict[str, int]:
        """How many runs were executed vs. served from each cache tier."""
        counts = {
            SOURCE_EXECUTED: 0,
            SOURCE_REPLAYED: 0,
            SOURCE_MEMORY: 0,
            SOURCE_DISK: 0,
        }
        for result in self.results:
            counts[result.source] = counts.get(result.source, 0) + 1
        return counts

    @property
    def cached_fraction(self) -> float:
        """Fraction of the *plan* served without simulation.

        The denominator is the full plan size, not the completed-result
        count: a ``keep_going`` sweep where most of the grid failed used
        to report its few disk-served survivors as a high fraction and
        sail through the CLI's ``--min-cache-fraction`` gate.  Failures
        are uncached by definition.
        """
        total = self.plan_size or len(self.results)
        if not total:
            return 0.0
        counts = self.counts_by_source()
        cached = counts[SOURCE_MEMORY] + counts[SOURCE_DISK]
        return cached / total


class SweepExecutor:
    """Runs specs and plans through the cache tiers and the process pool.

    Parameters
    ----------
    workers:
        Maximum worker processes for :meth:`run_plan`.  ``1`` (the
        default) executes inline — no pool, no pickling — which is also
        the fallback whenever a plan has at most one uncached run.
    cache_dir:
        Optional directory for the on-disk snapshot cache; ``None``
        disables disk caching (the in-memory tier still applies).
    trace_dir:
        Optional directory of recorded binary traces, one per distinct
        workload stream, named by
        :meth:`~repro.analysis.plan.RunSpec.stream_digest`.  Specs whose
        trace exists are replayed from it instead of regenerating the
        stream; snapshots are bit-identical either way, so results are
        cached under the original (generated) spec identity.
    record_traces:
        With a ``trace_dir``, capture the trace of any spec whose stream
        is not yet recorded before executing it (recording happens in
        the parent process, so pool workers never race on one file).
    trace_format:
        Format for traces captured by ``record_traces``: ``"binary"``
        (v2) or ``"blocked"`` (v3).  The default, ``None``, picks per
        spec — ``"blocked"`` for batched-engine specs, whose replay path
        consumes v3 blocks natively, and ``"binary"`` otherwise.
        (Recording batched specs in v2 silently forced every replay
        down the sequential per-record decode path.)
    retry:
        :class:`~repro.analysis.retrypool.RetryPolicy` applied to each
        uncached run: per-run attempts, exponential backoff and an
        optional per-run wall-clock deadline.  The default retries
        nothing (one attempt, no timeout) — exactly the old behaviour,
        minus the old failure mode of losing sibling results.  A policy
        with ``timeout_s`` forces pool execution even for a single
        pending run, because an inline hang cannot be killed.
    keep_going:
        When a spec exhausts its attempts, record it in
        ``SweepOutcome.failures`` and keep sweeping instead of raising
        :class:`~repro.errors.ExecutionError` — one poisoned spec no
        longer discards a 100-run grid.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        trace_dir: Optional[Union[str, Path]] = None,
        record_traces: bool = False,
        trace_format: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        keep_going: bool = False,
    ) -> None:
        self.workers = max(1, int(workers))
        self.disk_cache = SnapshotCache(cache_dir) if cache_dir else None
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.record_traces = bool(record_traces)
        if trace_format is not None and trace_format not in TRACE_SUFFIXES:
            raise ConfigurationError(
                f"unknown trace format {trace_format!r}; expected one of "
                f"{sorted(TRACE_SUFFIXES)}"
            )
        self.trace_format = trace_format
        self.retry = retry if retry is not None else RetryPolicy()
        self.keep_going = bool(keep_going)
        self._memory: Dict[RunSpec, MachineSnapshot] = {}

    # ------------------------------------------------------------------
    # Single-spec path (ExperimentRunner facade, serve handlers)
    # ------------------------------------------------------------------
    def run(self, spec: RunSpec) -> MachineSnapshot:
        """Resolve one spec through memory -> disk -> execution.

        Uncached runs go through the same
        :func:`~repro.analysis.retrypool.run_tasks` machinery as
        :meth:`run_plan` — retry/backoff/timeout from the executor's
        ``retry`` policy, the ``sweep.run`` fault site, pool isolation
        when a deadline demands it.  (This path used to call
        :func:`execute_run_spec` directly, so single runs — every facade
        call, every server request — silently got *none* of the fault
        tolerance the sweep path advertised.)  A spec that exhausts its
        attempts raises :class:`~repro.errors.ExecutionError`; an
        interrupt re-raises ``KeyboardInterrupt``.
        """
        cached = self._resolve_cached(spec)
        if cached is not None:
            return cached[0]
        report, _sources = self._execute_pending([spec])
        if report.interrupted:
            raise KeyboardInterrupt
        if 0 not in report.results:
            failure = RunFailure(
                spec,
                report.failures[0].kind,
                report.failures[0].attempts,
                report.failures[0].error,
            )
            raise ExecutionError(
                f"run {spec.workload_name}/{spec.policy} failed permanently "
                f"({failure.kind} after {failure.attempts} attempt(s)): "
                f"{failure.error}",
                failures=[failure],
            )
        snapshot, _duration = report.results[0]
        self._finish(spec, snapshot)
        return snapshot

    def lookup(self, spec: RunSpec):
        """Probe the cache tiers only; ``(snapshot, source)`` or ``None``.

        Never executes.  This is the warm-tier fast path the serve layer
        answers from before considering coalescing or execution.
        """
        return self._resolve_cached(spec)

    # ------------------------------------------------------------------
    # Trace replay
    # ------------------------------------------------------------------
    def trace_format_for(self, spec: RunSpec) -> str:
        """Format a freshly captured trace of *spec* should use.

        An explicit ``trace_format`` wins; otherwise batched-engine
        specs record v3 ``"blocked"`` (their replay path streams the
        stored blocks directly) and everything else the compact v2
        ``"binary"``.
        """
        if self.trace_format is not None:
            return self.trace_format
        return "blocked" if spec.engine == "batched" else "binary"

    def trace_path_for(self, spec: RunSpec) -> Optional[Path]:
        """Where this spec's workload stream is (or would be) recorded.

        An existing blocked (v3, ``.rpt3``) recording wins — it replays
        fastest, chunk-for-chunk, on the batched engine and decodes
        transparently everywhere else; an existing v2 recording is used
        next.  When neither exists, the returned path (the record
        target) carries the suffix of :meth:`trace_format_for`, so
        recordings land in the format their replays want.
        """
        if self.trace_dir is None:
            return None
        binary = self.trace_dir / trace_file_name(spec)
        blocked = binary.with_suffix(".rpt3")
        if blocked.exists():
            return blocked
        if binary.exists():
            return binary
        return (
            blocked if self.trace_format_for(spec) == "blocked" else binary
        )

    def _effective_spec(self, spec: RunSpec) -> RunSpec:
        """Return the spec to actually execute: as-is, or trace-replayed.

        Specs that already carry a trace source are passed through; for
        the rest, an available recorded trace (captured on demand when
        ``record_traces`` is set) turns the run into a replay.
        """
        if spec.trace_source is not None:
            return spec
        path = self.trace_path_for(spec)
        if path is None:
            return spec
        if not path.exists():
            if not self.record_traces:
                return spec
            record_spec_trace(spec, path, format=self.trace_format_for(spec))
        return spec.with_trace(path)

    def _resolve_cached(self, spec: RunSpec):
        """Probe the cache tiers; return ``(snapshot, source)`` or ``None``."""
        snapshot = self._memory.get(spec)
        if snapshot is not None:
            return snapshot, SOURCE_MEMORY
        if self.disk_cache is not None:
            snapshot = self.disk_cache.load(spec)
            if snapshot is not None:
                self._memory[spec] = snapshot
                return snapshot, SOURCE_DISK
        return None

    # ------------------------------------------------------------------
    # Plan path (used by the sweep CLI and the benchmarks)
    # ------------------------------------------------------------------
    def run_plan(self, plan: SweepPlan) -> SweepOutcome:
        """Run every spec of *plan*, fanning uncached runs over the pool.

        Results come back in plan order regardless of which worker
        finished first, and are bit-identical to a serial execution
        because workers rebuild their workload streams from the spec.

        Failure semantics follow the executor's ``retry``/``keep_going``
        configuration: a spec that exhausts its attempts raises
        :class:`~repro.errors.ExecutionError` (carrying the partial
        outcome) unless ``keep_going`` is set, in which case it lands in
        ``outcome.failures`` instead.  ``KeyboardInterrupt`` shuts the
        pool down promptly and returns the partial outcome with
        ``interrupted=True`` — finished results are never discarded.
        """
        started = time.perf_counter()
        outcome = SweepOutcome(plan_name=plan.name, plan_size=len(plan))
        resolved: Dict[RunSpec, SweepResult] = {}
        pending: List[RunSpec] = []

        for spec in plan:
            if spec in resolved:
                continue
            cached = self._resolve_cached(spec)
            if cached is not None:
                resolved[spec] = SweepResult(spec, cached[0], cached[1])
            else:
                pending.append(spec)

        report, sources = self._execute_pending(pending)
        for index in sorted(report.results):
            snapshot, duration = report.results[index]
            spec = pending[index]
            self._finish(spec, snapshot)
            resolved[spec] = SweepResult(spec, snapshot, sources[index], duration)

        outcome.results = [
            resolved[spec] for spec in plan if spec in resolved
        ]
        outcome.failures = [
            RunFailure(pending[f.index], f.kind, f.attempts, f.error)
            for f in report.failures
        ]
        outcome.retries = report.retries
        outcome.timeouts = report.timeouts
        outcome.pool_rebuilds = report.pool_rebuilds
        outcome.interrupted = report.interrupted
        outcome.elapsed_s = time.perf_counter() - started
        if outcome.failures and not self.keep_going and not outcome.interrupted:
            first = outcome.failures[0]
            raise ExecutionError(
                f"{len(outcome.failures)} of {len(plan)} runs failed "
                f"permanently; first: {first.spec.workload_name}/"
                f"{first.spec.policy} ({first.kind} after "
                f"{first.attempts} attempt(s)): {first.error}",
                failures=outcome.failures,
                outcome=outcome,
            )
        return outcome

    # ------------------------------------------------------------------
    def _execute_pending(self, pending: List[RunSpec]):
        """Execute uncached runs; return ``(PoolReport, sources)``.

        Results are keyed by the *original* spec even when execution
        replays a recorded trace: the snapshot is bit-identical, and the
        caches must serve future generated runs of the same spec.
        Scheduling, retries, deadlines and pool recovery all live in
        :func:`repro.analysis.retrypool.run_tasks`.
        """
        effective = [self._effective_spec(spec) for spec in pending]
        sources = [
            SOURCE_EXECUTED if spec is run_as else SOURCE_REPLAYED
            for spec, run_as in zip(pending, effective)
        ]
        report = run_tasks(
            list(enumerate(effective)),
            _run_task,
            policy=self.retry,
            max_workers=self.workers,
            keep_going=self.keep_going,
            keys=[
                _sweep_fault_key(index, run_as)
                for index, run_as in enumerate(effective)
            ],
        )
        return report, sources

    def _finish(self, spec: RunSpec, snapshot: MachineSnapshot) -> None:
        self._memory[spec] = snapshot
        if self.disk_cache is not None:
            self.disk_cache.store(spec, snapshot)

    # ------------------------------------------------------------------
    def forget(self) -> None:
        """Drop the in-memory tier (the disk cache, if any, is kept)."""
        self._memory.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = self.disk_cache.root if self.disk_cache else None
        return f"SweepExecutor(workers={self.workers}, cache_dir={cache})"
