"""Checkpointed and sharded trace replay for billion-access runs.

Long replays have two operational problems the plain simulator loop
cannot answer: an interrupted run restarts from zero, and a single
process replays at single-core speed.  This module layers both on top of
the engine checkpoints (:mod:`repro.system.checkpoint`) and the v3.1
trace epoch index (:mod:`repro.trace.binary`):

* :func:`record_checkpoints` — replay a trace serially, writing an
  atomic machine checkpoint at every epoch boundary.  With ``resume``,
  a re-invocation after a kill restores the newest intact checkpoint
  and replays only the remaining epochs; the final snapshot is
  bit-identical to an uninterrupted run.
* :func:`replay_sharded` — fan the epochs of a v3.1 trace over a
  process pool.  Worker *k* restores the checkpoint at its span's start
  epoch (span 0 starts from a fresh machine), decodes only its epoch
  byte range and replays it; the last span's snapshot is the run's
  final state, bit-identical to a single-process replay.

Both modes share one checkpoint directory, described by a small
``manifest.json`` (trace identity, epoch size, engine, configuration
digest) so a resume or a shard never silently mixes checkpoints from a
different trace, epoch size or machine.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro import faults
from repro.analysis.retrypool import RetryPolicy, run_tasks
from repro.errors import ExecutionError, SimulationError, WorkloadError
from repro.ioutil import atomic_write_json
from repro.stats.snapshot import MachineSnapshot
from repro.system.checkpoint import (
    checkpoint_file_name,
    config_digest,
    parse_checkpoint_epoch,
    verify_checkpoint,
)
from repro.system.config import SystemConfig
from repro.system.fastcore import resolve_engine
from repro.system.simulator import SimulationResult, Simulator
from repro.trace.binary import v3_epoch_index
from repro.trace.io import count_records, read_trace, sniff_format

PathLike = Union[str, Path]

#: Manifest file describing a checkpoint directory.
MANIFEST_NAME = "manifest.json"


# ----------------------------------------------------------------------
# Checkpoint directory manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardManifest:
    """Identity of the run a checkpoint directory belongs to."""

    trace_name: str
    trace_records: int
    epoch_records: int
    engine: str
    config_digest: str

    @property
    def epochs(self) -> int:
        """Number of epochs the trace divides into (last may be short)."""
        return -(-self.trace_records // self.epoch_records)

    def to_dict(self) -> dict:
        return {
            "trace_name": self.trace_name,
            "trace_records": self.trace_records,
            "epoch_records": self.epoch_records,
            "engine": self.engine,
            "config_digest": self.config_digest,
        }


def write_manifest(directory: PathLike, manifest: ShardManifest) -> Path:
    """Atomically write *manifest* into *directory*."""
    return atomic_write_json(Path(directory) / MANIFEST_NAME, manifest.to_dict())


def load_manifest(directory: PathLike) -> Optional[ShardManifest]:
    """Read the manifest of *directory*, or ``None`` when absent/corrupt."""
    path = Path(directory) / MANIFEST_NAME
    try:
        data = json.loads(path.read_text())
        return ShardManifest(
            trace_name=str(data["trace_name"]),
            trace_records=int(data["trace_records"]),
            epoch_records=int(data["epoch_records"]),
            engine=str(data["engine"]),
            config_digest=str(data["config_digest"]),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _check_manifest(
    directory: Path, expected: ShardManifest, action: str
) -> None:
    """Refuse to reuse a checkpoint directory recorded for a different run."""
    existing = load_manifest(directory)
    if existing is None:
        return
    if existing != expected:
        raise SimulationError(
            f"checkpoint directory {directory} was recorded for "
            f"{existing.to_dict()} but this {action} expects "
            f"{expected.to_dict()}; use a fresh --checkpoint-dir or "
            f"re-record the checkpoints"
        )


def latest_checkpoint(
    directory: PathLike, verify: bool = True
) -> Optional[Tuple[int, Path]]:
    """Return ``(epoch, path)`` of the newest *intact* epoch checkpoint.

    Checkpoint writes are atomic against process death, but not against
    power loss on fsync-less media or later bit rot, so by default every
    candidate's envelope is digest-verified (without unpickling) before
    it is trusted.  A damaged file is quarantined as ``<name>.corrupt``
    and the scan falls back to the next-newest epoch — a resume after
    a torn write restarts one epoch earlier instead of crashing (or
    silently restoring garbage).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: List[Tuple[int, Path]] = []
    for path in directory.iterdir():
        epoch = parse_checkpoint_epoch(path.name)
        if epoch >= 0:
            candidates.append((epoch, path))
    for epoch, path in sorted(candidates, reverse=True):
        if not verify:
            return epoch, path
        try:
            verify_checkpoint(path.read_bytes())
        except (OSError, SimulationError):
            try:
                os.replace(path, path.with_name(path.name + ".corrupt"))
            except OSError:
                pass
            continue
        return epoch, path
    return None


# ----------------------------------------------------------------------
# Serial checkpointed replay (resume after kill)
# ----------------------------------------------------------------------
def _records_from_epoch(
    trace_path: Path, start_epoch: int, epoch_records: int
):
    """Record iterator over the trace starting at *start_epoch*.

    v3.1 traces whose epoch index matches *epoch_records* seek straight
    to the epoch's first block; anything else decodes sequentially and
    skips — correct for every format, merely slower to reach the tail.
    """
    index = None
    if sniff_format(trace_path) == "blocked":
        index = v3_epoch_index(trace_path)
    if index is not None and index["epoch_records"] == epoch_records:
        from repro.trace.binary import read_trace_v3_chunks

        def _sliced() -> Iterator:
            for chunk in read_trace_v3_chunks(
                trace_path, start_epoch=start_epoch
            ):
                yield from chunk.records()

        return _sliced()
    from itertools import islice

    return islice(read_trace(trace_path), start_epoch * epoch_records, None)


def _batched_can_seek(trace_path: Path, epoch_records: int) -> bool:
    """True when a batched replay can start mid-trace at an epoch."""
    if sniff_format(trace_path) != "blocked":
        return False
    index = v3_epoch_index(trace_path)
    return index is not None and int(index["epoch_records"]) == epoch_records


def record_checkpoints(
    config: SystemConfig,
    trace_path: PathLike,
    epoch_records: int,
    checkpoint_dir: PathLike,
    engine: Optional[str] = None,
    resume: bool = False,
    workload_name: str = "",
    retry: Optional[RetryPolicy] = None,
) -> SimulationResult:
    """Replay *trace_path* serially, checkpointing every *epoch_records*.

    With ``resume``, an interrupted run picks up from the newest intact
    epoch checkpoint instead of replaying from zero; epoch numbering
    continues where the interrupted run left off, so the directory ends
    up with the same files either way and the final snapshot is
    bit-identical to an uninterrupted replay.

    A *retry* policy turns transient failures into automatic resumes:
    each retry attempt restarts from the newest intact checkpoint the
    failed attempt managed to write (falling back to a from-scratch
    replay when it cannot seek there), with the policy's exponential
    backoff between attempts.  ``KeyboardInterrupt`` is never retried.
    """
    if epoch_records <= 0:
        raise SimulationError("epoch_records must be positive")
    trace_path = Path(trace_path)
    directory = Path(checkpoint_dir)
    engine = resolve_engine(engine)
    policy = retry if retry is not None else RetryPolicy()
    manifest = ShardManifest(
        trace_name=trace_path.name,
        trace_records=count_records(trace_path),
        epoch_records=epoch_records,
        engine=engine,
        config_digest=config_digest(config),
    )
    _check_manifest(directory, manifest, "replay")

    attempt = 1
    while True:
        faults.set_attempt(attempt)
        try:
            return _record_checkpoints_once(
                config, trace_path, epoch_records, directory, engine,
                manifest, workload_name,
                # A retry is a resume by construction: the failed attempt's
                # checkpoints are on disk and verified on discovery.
                resume=resume or attempt > 1,
                explicit_resume=resume,
            )
        except KeyboardInterrupt:
            raise
        except Exception:
            if attempt >= policy.max_attempts:
                raise
            attempt += 1
            delay = policy.delay_for(attempt)
            if delay > 0:
                time.sleep(delay)
        finally:
            faults.set_attempt(1)


def _record_checkpoints_once(
    config: SystemConfig,
    trace_path: Path,
    epoch_records: int,
    directory: Path,
    engine: str,
    manifest: ShardManifest,
    workload_name: str,
    resume: bool,
    explicit_resume: bool,
) -> SimulationResult:
    """One attempt of :func:`record_checkpoints` (pre-flight already done)."""
    start_epoch = 0
    blob: Optional[bytes] = None
    if resume:
        found = latest_checkpoint(directory)
        if found is not None:
            start_epoch, path = found
            blob = path.read_bytes()
    if (
        start_epoch > 0
        and not explicit_resume
        and engine == "batched"
        and not _batched_can_seek(trace_path, epoch_records)
    ):
        # Automatic (retry-driven) resume on a trace the batched engine
        # cannot seek: replay from scratch rather than fail the retry.
        # A user-requested resume keeps its actionable refusal below.
        start_epoch, blob = 0, None

    simulator = Simulator(config, engine=engine)
    if blob is not None:
        simulator.restore(blob)
    if engine == "batched":
        accesses = _chunks_from_epoch(trace_path, start_epoch, epoch_records)
    else:
        accesses = _records_from_epoch(trace_path, start_epoch, epoch_records)
    directory.mkdir(parents=True, exist_ok=True)
    write_manifest(directory, manifest)
    result = simulator.run(
        accesses,
        workload_name=workload_name or trace_path.name,
        checkpoint_every=epoch_records,
        checkpoint_dir=directory,
        checkpoint_start=start_epoch * epoch_records,
    )
    return SimulationResult(
        config=result.config,
        snapshot=result.snapshot,
        accesses_simulated=start_epoch * epoch_records
        + result.accesses_simulated,
        workload_name=result.workload_name,
        engine=result.engine,
    )


def _chunks_from_epoch(
    trace_path: Path, start_epoch: int, epoch_records: int
):
    """Chunk iterator over the trace starting at *start_epoch* (batched).

    The batched engine ingests columnar chunks; only a v3.1 trace with a
    matching epoch index can seek to an epoch, so a mid-trace resume on
    any other source is refused with the fix spelled out.
    """
    index = None
    if sniff_format(trace_path) == "blocked":
        index = v3_epoch_index(trace_path)
    if index is not None and index["epoch_records"] == epoch_records:
        from repro.trace.binary import read_trace_v3_chunks

        return read_trace_v3_chunks(trace_path, start_epoch=start_epoch)
    if start_epoch == 0:
        from repro.trace.io import read_trace_chunks

        return read_trace_chunks(trace_path)
    raise SimulationError(
        f"cannot resume a batched replay of {trace_path} mid-trace: the "
        f"trace has no epoch index matching epoch_records="
        f"{epoch_records}; re-record it with "
        f"'trace record --format blocked --epoch-records {epoch_records}'"
    )


# ----------------------------------------------------------------------
# Sharded replay (process pool over epoch spans)
# ----------------------------------------------------------------------
@dataclass
class ShardedReplayResult:
    """Outcome of one sharded replay."""

    #: Final machine snapshot (end of the last epoch) — bit-identical to
    #: a single-process replay of the whole trace.
    snapshot: MachineSnapshot
    #: End-of-span snapshot per shard, in epoch order.
    span_snapshots: List[MachineSnapshot] = field(default_factory=list)
    #: ``(start_epoch, end_epoch)`` per shard, in epoch order.
    spans: List[Tuple[int, int]] = field(default_factory=list)
    epochs: int = 0
    accesses_simulated: int = 0


@dataclass(frozen=True)
class _SpanTask:
    """Picklable description of one shard's work."""

    config: SystemConfig
    trace_path: str
    engine: str
    start_epoch: int
    end_epoch: int
    checkpoint_path: Optional[str]


def _span_fault_key(task: _SpanTask) -> str:
    """The ``shard.span`` fault-site key naming one shard's epoch span."""
    return f"#{task.start_epoch}-{task.end_epoch}"


def _replay_span(task: _SpanTask) -> Tuple[MachineSnapshot, int]:
    """Pool worker body: restore the span's checkpoint and replay it.

    The :func:`faults.fire` call is the chaos hook standing in for a
    real shard failure; a no-op with no plan installed.
    """
    from repro.trace.binary import read_trace_v3_chunks

    faults.fire("shard.span", key=_span_fault_key(task))

    simulator = Simulator(task.config, engine=task.engine)
    if task.checkpoint_path is not None:
        simulator.restore(Path(task.checkpoint_path).read_bytes())
    chunks = read_trace_v3_chunks(
        task.trace_path,
        start_epoch=task.start_epoch,
        end_epoch=task.end_epoch,
    )
    if simulator.engine == "batched":
        accesses = chunks
    else:
        accesses = (
            record for chunk in chunks for record in chunk.records()
        )
    result = simulator.run(accesses, workload_name=Path(task.trace_path).name)
    return result.snapshot, result.accesses_simulated


def partition_epochs(epochs: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(epochs)`` into at most *shards* contiguous spans."""
    if epochs <= 0:
        return []
    shards = max(1, min(shards, epochs))
    base, extra = divmod(epochs, shards)
    spans = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def replay_sharded(
    config: SystemConfig,
    trace_path: PathLike,
    shards: int,
    checkpoint_dir: PathLike,
    engine: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> ShardedReplayResult:
    """Replay a checkpointed v3.1 trace across a process pool.

    The trace's epochs are split into *shards* contiguous spans; the
    worker of each span restores the epoch checkpoint at its start
    (span 0 starts from a fresh machine) and replays only its span's
    blocks.  Requires the epoch checkpoints of a prior
    :func:`record_checkpoints` run in *checkpoint_dir* — the manifest is
    checked so checkpoints from a different trace, epoch size, engine
    or machine configuration are refused rather than silently replayed.

    A *retry* policy makes shard failure survivable: a failed span is
    retried from its epoch checkpoint (never by re-running the world),
    a hung span is killed at the policy's deadline, and a died worker
    only requeues the spans it took down.  When a span exhausts its
    attempts the whole replay raises
    :class:`~repro.errors.ExecutionError` naming the span.

    The returned :attr:`~ShardedReplayResult.snapshot` (the last span's
    end state) is bit-identical to a single-process replay.
    """
    if shards <= 0:
        raise SimulationError("shards must be positive")
    trace_path = Path(trace_path)
    directory = Path(checkpoint_dir)
    engine = resolve_engine(engine)
    index = (
        v3_epoch_index(trace_path)
        if sniff_format(trace_path) == "blocked"
        else None
    )
    if index is None:
        raise WorkloadError(
            f"{trace_path}: sharded replay needs a v3.1 blocked trace "
            f"with an epoch index; re-record it with "
            f"'trace record --format blocked --epoch-records <N>'"
        )
    epoch_records = int(index["epoch_records"])
    entries = index["entries"]
    epochs = len(entries)
    if epochs == 0:
        raise WorkloadError(f"{trace_path}: trace holds no epochs")
    manifest = ShardManifest(
        trace_name=trace_path.name,
        trace_records=sum(records for _offset, records in entries),
        epoch_records=epoch_records,
        engine=engine,
        config_digest=config_digest(config),
    )
    _check_manifest(directory, manifest, "sharded replay")

    spans = partition_epochs(epochs, shards)
    tasks = []
    for start, stop in spans:
        if start == 0:
            checkpoint_path: Optional[str] = None
        else:
            path = directory / checkpoint_file_name(start)
            if not path.exists():
                raise SimulationError(
                    f"sharded replay needs checkpoint {path.name} in "
                    f"{directory}; run the serial checkpointed replay "
                    f"first (replay --checkpoint-dir ... without --shards)"
                )
            checkpoint_path = str(path)
        tasks.append(
            _SpanTask(
                config=config,
                trace_path=str(trace_path),
                engine=engine,
                start_epoch=start,
                end_epoch=stop,
                checkpoint_path=checkpoint_path,
            )
        )

    report = run_tasks(
        tasks,
        _replay_span,
        policy=retry if retry is not None else RetryPolicy(),
        max_workers=len(tasks),
        keys=[_span_fault_key(task) for task in tasks],
    )
    if report.interrupted:
        raise KeyboardInterrupt("sharded replay interrupted")
    if report.failures:
        first = report.failures[0]
        raise ExecutionError(
            f"{len(report.failures)} of {len(tasks)} shard spans failed "
            f"permanently; first: span {first.key} ({first.kind} after "
            f"{first.attempts} attempt(s)): {first.error}",
            failures=report.failures,
        )
    outcomes = [report.results[index] for index in range(len(tasks))]
    span_snapshots = [snapshot for snapshot, _count in outcomes]
    return ShardedReplayResult(
        snapshot=span_snapshots[-1],
        span_snapshots=span_snapshots,
        spans=spans,
        epochs=epochs,
        accesses_simulated=sum(count for _snapshot, count in outcomes),
    )
