"""Experiment runners shared by the figures, examples and benchmarks.

Every figure in the paper compares one or more *runs* of the simulator.
This module provides the machinery to execute those runs reproducibly:

* :class:`ExperimentSettings` — the knobs shared across the whole harness
  (down-scaling factor, access count, seeds), overridable from the
  environment so the benchmark suite can be sped up or slowed down without
  touching code (``REPRO_BENCH_ACCESSES``, ``REPRO_BENCH_SCALE``).
* :func:`run_benchmark` — one benchmark under one policy / probe-filter
  size, returning a :class:`~repro.stats.snapshot.MachineSnapshot`.
* :func:`run_pair` — the baseline/ALLARM pair behind most figures.
* :func:`run_multiprocess` — the two-process setup of Section III-B.

Results are cached per-settings within a process so that benchmarks that
share runs (for example Figures 3a–3g all reuse the same sixteen runs) do
not repeat simulations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.stats.snapshot import MachineSnapshot
from repro.system.config import DEFAULT_EXPERIMENT_SCALE, experiment_config
from repro.system.simulator import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.multiprocess import build_multiprocess_spec, generate_multiprocess
from repro.workloads.registry import build_spec

#: Nominal probe-filter sizes swept by Figure 3h (bytes, paper units).
FIG3H_PF_SIZES: Tuple[int, ...] = (512 * 1024, 256 * 1024, 128 * 1024)

#: Nominal probe-filter sizes swept by Figure 4 (bytes, paper units).
FIG4_PF_SIZES: Tuple[int, ...] = (
    512 * 1024,
    256 * 1024,
    128 * 1024,
    64 * 1024,
    32 * 1024,
)


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared settings for the experiment harness.

    Attributes
    ----------
    scale:
        Common down-scaling factor applied to caches, probe filters and
        workload footprints (see DESIGN.md §5).
    accesses:
        Compute-phase accesses per 16-thread run.
    multiprocess_accesses:
        Compute-phase accesses per copy in the two-process runs.
    seed:
        Base seed offset applied to every workload.
    """

    scale: int = DEFAULT_EXPERIMENT_SCALE
    accesses: int = 20_000
    multiprocess_accesses: int = 8_000
    seed: int = 0

    @classmethod
    def from_environment(cls) -> "ExperimentSettings":
        """Build settings honouring ``REPRO_BENCH_*`` environment overrides."""
        return cls(
            scale=_env_int("REPRO_BENCH_SCALE", DEFAULT_EXPERIMENT_SCALE),
            accesses=_env_int("REPRO_BENCH_ACCESSES", 20_000),
            multiprocess_accesses=_env_int("REPRO_BENCH_MP_ACCESSES", 8_000),
            seed=_env_int("REPRO_BENCH_SEED", 0),
        )

    def quick(self, accesses: int = 12_000) -> "ExperimentSettings":
        """A reduced copy for unit tests and smoke runs."""
        return replace(
            self, accesses=accesses, multiprocess_accesses=max(4_000, accesses // 3)
        )


@dataclass
class RunKey:
    """Cache key identifying one simulation run."""

    benchmark: str
    policy: str
    pf_size: int
    threads: str
    settings: ExperimentSettings

    def as_tuple(self) -> Tuple:
        return (
            self.benchmark,
            self.policy,
            self.pf_size,
            self.threads,
            self.settings,
        )


class ExperimentRunner:
    """Executes and caches the simulation runs behind the paper's figures."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings.from_environment()
        self._cache: Dict[Tuple, MachineSnapshot] = {}

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    def run_benchmark(
        self,
        benchmark: str,
        policy: str,
        pf_size: int = 512 * 1024,
        frames_per_node: Optional[int] = None,
    ) -> MachineSnapshot:
        """Run one 16-thread benchmark under one policy and PF size.

        ``pf_size`` is the *nominal* (paper-units) probe-filter coverage;
        the harness scales it down together with the caches.
        """
        key = (benchmark, policy, pf_size, "16t", frames_per_node, self.settings)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        spec = build_spec(
            benchmark,
            total_accesses=self.settings.accesses,
            seed=self._seed_for(benchmark),
        ).with_footprint_scale(self.settings.scale)
        config = experiment_config(
            policy,
            scale=self.settings.scale,
            nominal_probe_filter_coverage=pf_size,
            frames_per_node=frames_per_node,
        )
        result = simulate(config, SyntheticWorkload(spec).generate(), benchmark)
        self._cache[key] = result.snapshot
        return result.snapshot

    def run_pair(
        self, benchmark: str, pf_size: int = 512 * 1024
    ) -> Tuple[MachineSnapshot, MachineSnapshot]:
        """Run the (baseline, allarm) pair used by Figures 3a–3g."""
        baseline = self.run_benchmark(benchmark, "baseline", pf_size)
        allarm = self.run_benchmark(benchmark, "allarm", pf_size)
        return baseline, allarm

    def run_multiprocess(
        self,
        benchmark: str,
        policy: str,
        pf_size: int,
        frames_per_node: Optional[int] = None,
    ) -> MachineSnapshot:
        """Run the Section III-B two-process configuration."""
        key = (benchmark, policy, pf_size, "2p", frames_per_node, self.settings)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        mp_spec = build_multiprocess_spec(
            benchmark,
            total_accesses_per_copy=self.settings.multiprocess_accesses,
            seed=self._seed_for(benchmark) + 1,
        )
        scaled_copies = tuple(
            copy.with_footprint_scale(self.settings.scale) for copy in mp_spec.copies
        )
        mp_spec = replace(mp_spec, copies=scaled_copies)
        config = experiment_config(
            policy,
            scale=self.settings.scale,
            nominal_probe_filter_coverage=pf_size,
            frames_per_node=frames_per_node,
        )
        result = simulate(
            config, generate_multiprocess(mp_spec), f"{benchmark}-2p"
        )
        self._cache[key] = result.snapshot
        return result.snapshot

    # ------------------------------------------------------------------
    def _seed_for(self, benchmark: str) -> int:
        # Stable per-benchmark seeds, perturbed by the settings seed so a
        # different REPRO_BENCH_SEED reruns everything with fresh streams.
        return self.settings.seed * 1000 + sum(ord(c) for c in benchmark)


#: Default module-level runner shared by figures and benchmarks so that
#: runs are reused across bench targets within one pytest session.
_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Return the process-wide shared :class:`ExperimentRunner`."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner


def reset_default_runner(settings: Optional[ExperimentSettings] = None) -> ExperimentRunner:
    """Replace the shared runner (used by tests to shrink run sizes)."""
    global _default_runner
    _default_runner = ExperimentRunner(settings)
    return _default_runner
