"""Experiment runners shared by the figures, examples and benchmarks.

Every figure in the paper compares one or more *runs* of the simulator.
Historically this module executed those runs itself; it is now a thin
compatibility facade over the sweep engine:

* :mod:`repro.analysis.plan` — declarative, picklable
  :class:`~repro.analysis.plan.RunSpec`s and the
  :class:`~repro.analysis.plan.SweepPlan` grids behind the figures;
* :mod:`repro.analysis.executor` — the
  :class:`~repro.analysis.executor.SweepExecutor` with its process-pool
  fan-out and content-addressed on-disk snapshot cache.

:class:`ExperimentRunner` keeps its historical API (``run_benchmark``,
``run_pair``, ``run_multiprocess``) so figures, examples and benchmarks
work unchanged, but every lookup now routes through one canonical
``RunSpec`` key.  Results are cached in memory per executor; set
``REPRO_CACHE_DIR`` (or pass an executor with a ``cache_dir``) to also
persist snapshots across processes and sessions.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.analysis.executor import SweepExecutor, SweepOutcome
from repro.analysis.plan import (
    FIG3H_PF_SIZES,
    FIG4_PF_SIZES,
    ExperimentSettings,
    RunSpec,
    SweepPlan,
    env_int,
    seed_for,
)
from repro.stats.snapshot import MachineSnapshot

__all__ = [
    "FIG3H_PF_SIZES",
    "FIG4_PF_SIZES",
    "ExperimentSettings",
    "ExperimentRunner",
    "RunSpec",
    "SweepPlan",
    "default_runner",
    "reset_default_runner",
    "seed_for",
]


class ExperimentRunner:
    """Executes and caches the simulation runs behind the paper's figures.

    A facade over :class:`~repro.analysis.executor.SweepExecutor`: each
    historical entry point builds the canonical
    :class:`~repro.analysis.plan.RunSpec` and resolves it through the
    executor's cache tiers.
    """

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        executor: Optional[SweepExecutor] = None,
    ) -> None:
        self.settings = settings or ExperimentSettings.from_environment()
        if executor is None:
            executor = SweepExecutor(
                workers=env_int("REPRO_BENCH_WORKERS", 1),
                cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            )
        self.executor = executor

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    def run_spec(self, spec: RunSpec) -> MachineSnapshot:
        """Run (or fetch from cache) one fully-specified run."""
        return self.executor.run(spec)

    def run_benchmark(
        self,
        benchmark: str,
        policy: str,
        pf_size: int = 512 * 1024,
        frames_per_node: Optional[int] = None,
    ) -> MachineSnapshot:
        """Run one 16-thread benchmark under one policy and PF size.

        ``pf_size`` is the *nominal* (paper-units) probe-filter coverage;
        the harness scales it down together with the caches.
        """
        return self.run_spec(
            RunSpec(
                benchmark=benchmark,
                policy=policy,
                pf_size=pf_size,
                layout="16t",
                frames_per_node=frames_per_node,
                settings=self.settings,
            )
        )

    def run_pair(
        self, benchmark: str, pf_size: int = 512 * 1024
    ) -> Tuple[MachineSnapshot, MachineSnapshot]:
        """Run the (baseline, allarm) pair used by Figures 3a–3g."""
        baseline = self.run_benchmark(benchmark, "baseline", pf_size)
        allarm = self.run_benchmark(benchmark, "allarm", pf_size)
        return baseline, allarm

    def run_multiprocess(
        self,
        benchmark: str,
        policy: str,
        pf_size: int,
        frames_per_node: Optional[int] = None,
    ) -> MachineSnapshot:
        """Run the Section III-B two-process configuration."""
        return self.run_spec(
            RunSpec(
                benchmark=benchmark,
                policy=policy,
                pf_size=pf_size,
                layout="2p",
                frames_per_node=frames_per_node,
                settings=self.settings,
            )
        )

    # ------------------------------------------------------------------
    # Whole plans
    # ------------------------------------------------------------------
    def run_plan(self, plan: SweepPlan) -> SweepOutcome:
        """Run every spec of a plan (parallel when the executor allows)."""
        return self.executor.run_plan(plan)


#: Default module-level runner shared by figures and benchmarks so that
#: runs are reused across bench targets within one pytest session.
_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Return the process-wide shared :class:`ExperimentRunner`."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner


def reset_default_runner(settings: Optional[ExperimentSettings] = None) -> ExperimentRunner:
    """Replace the shared runner (used by tests to shrink run sizes)."""
    global _default_runner
    _default_runner = ExperimentRunner(settings)
    return _default_runner
