"""Persisted benchmark trajectory: append-only perf history files.

The perf benches (``benchmarks/test_perf_hot_path.py`` and
``benchmarks/test_trace_perf.py``) measure throughput on whatever
machine runs them; a single number is only meaningful relative to the
numbers that came before it on comparable hardware.  This module gives
them a tiny append-only store — ``BENCH_hotpath.json`` and
``BENCH_trace.json`` at the repository root — so the accesses/s and
replay-MB/s trajectory is visible across PRs (and uploadable as a CI
artifact) instead of evaporating with each pytest session.

File format (stable, ``schema`` guards future shape changes)::

    {
      "schema": 1,
      "entries": [
        {"timestamp": "...", "git_sha": "...", "engine": "packed",
         "accesses_per_s": 1.05e6, ...},
        ...
      ]
    }

Entries are appended, never rewritten; corrupt or stale-schema files are
replaced rather than crashing the bench.  Set ``REPRO_BENCH_LOG=0`` to
disable logging entirely (timing numbers from e.g. coverage runs would
only pollute the trend).
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Version of the on-disk trajectory layout.
BENCH_LOG_SCHEMA = 1

#: Cap on retained entries per file: old history scrolls off rather than
#: growing the checked-in file without bound.
MAX_ENTRIES = 400


def bench_logging_enabled() -> bool:
    """True unless ``REPRO_BENCH_LOG=0`` disables trajectory logging."""
    return os.environ.get("REPRO_BENCH_LOG", "1") != "0"


def git_sha(repo_root: Union[str, Path, None] = None) -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def load_bench_log(path: Union[str, Path]) -> Dict[str, object]:
    """Read a trajectory file, degrading to an empty log on any damage."""
    empty: Dict[str, object] = {"schema": BENCH_LOG_SCHEMA, "entries": []}
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return empty
    if (
        not isinstance(data, dict)
        or data.get("schema") != BENCH_LOG_SCHEMA
        or not isinstance(data.get("entries"), list)
    ):
        return empty
    return data


def append_bench_entry(
    path: Union[str, Path],
    entry: Dict[str, object],
    repo_root: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Append one measurement to the trajectory file at *path*.

    Stamps the entry with an ISO-8601 UTC timestamp and the current git
    sha (callers add the measurement fields).  The write is atomic
    (temp file + ``os.replace``), so concurrent bench processes never
    tear the file — last writer wins, which is fine for an append-only
    perf log.  Returns the path written, or ``None`` when logging is
    disabled.
    """
    if not bench_logging_enabled():
        return None
    path = Path(path)
    data = load_bench_log(path)
    stamped = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(repo_root if repo_root is not None else path.parent),
    }
    stamped.update(entry)
    entries: List[object] = list(data["entries"])
    entries.append(stamped)
    data["entries"] = entries[-MAX_ENTRIES:]

    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def latest_entry(
    path: Union[str, Path], **filters: object
) -> Optional[Dict[str, object]]:
    """Return the newest entry matching all *filters* (field == value)."""
    for entry in reversed(load_bench_log(path)["entries"]):
        if isinstance(entry, dict) and all(
            entry.get(key) == value for key, value in filters.items()
        ):
            return entry
    return None
