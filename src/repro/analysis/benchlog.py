"""Persisted benchmark trajectory: append-only perf history files.

The perf benches (``benchmarks/test_perf_hot_path.py`` and
``benchmarks/test_trace_perf.py``) measure throughput on whatever
machine runs them; a single number is only meaningful relative to the
numbers that came before it on comparable hardware.  This module gives
them a tiny append-only store — ``BENCH_hotpath.json`` and
``BENCH_trace.json`` at the repository root — so the accesses/s and
replay-MB/s trajectory is visible across PRs (and uploadable as a CI
artifact) instead of evaporating with each pytest session.

File format (stable, ``schema`` guards future shape changes)::

    {
      "schema": 1,
      "entries": [
        {"timestamp": "...", "git_sha": "...", "engine": "packed",
         "accesses_per_s": 1.05e6, ...},
        ...
      ]
    }

Entries are appended, never rewritten; corrupt or stale-schema files are
replaced rather than crashing the bench.  Set ``REPRO_BENCH_LOG=0`` to
disable logging entirely (timing numbers from e.g. coverage runs would
only pollute the trend).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.ioutil import atomic_write_json

#: Version of the on-disk trajectory layout.
BENCH_LOG_SCHEMA = 1

#: Cap on retained entries per file: old history scrolls off rather than
#: growing the checked-in file without bound.
MAX_ENTRIES = 400


def bench_logging_enabled() -> bool:
    """True unless ``REPRO_BENCH_LOG=0`` disables trajectory logging."""
    return os.environ.get("REPRO_BENCH_LOG", "1") != "0"


def _discover_git_root(start: Path) -> Optional[Path]:
    """Walk up from *start* to the first directory containing ``.git``."""
    try:
        current = start.resolve()
    except OSError:
        return None
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / ".git").exists():
            return candidate
    return None


def _run_git(args: List[str], cwd: Path) -> Optional[str]:
    """Run a git command, returning stripped stdout or ``None`` on failure."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_sha(repo_root: Union[str, Path, None] = None) -> str:
    """Commit hash stamping a bench entry; robust to messy environments.

    Resolution order:

    1. ``REPRO_GIT_SHA`` when set (CI images and containers without a
       ``.git`` directory can still stamp entries correctly);
    2. ``git rev-parse HEAD`` run from the nearest ancestor of
       *repo_root* that contains ``.git`` — the bench-log path may sit
       anywhere inside the checkout, and a non-existent ``cwd`` must not
       crash the bench;
    3. ``"unknown"`` outside any checkout.

    A dirty working tree gets a ``+dirty`` suffix so trajectory entries
    recorded mid-PR are not attributed to the previous commit's code.
    """
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    root = _discover_git_root(Path(repo_root) if repo_root else Path.cwd())
    if root is None:
        return "unknown"
    sha = _run_git(["rev-parse", "HEAD"], cwd=root)
    if not sha:
        return "unknown"
    status = _run_git(["status", "--porcelain"], cwd=root)
    if status and any(
        not _is_trajectory_artifact(line) for line in status.splitlines()
    ):
        return sha + "+dirty"
    return sha


def _is_trajectory_artifact(porcelain_line: str) -> bool:
    """True when a ``git status --porcelain`` line names a bench-log product.

    The trajectory files are themselves git-tracked, so the first append
    of a run would otherwise dirty the tree and stamp every subsequent
    entry of the same clean checkout ``+dirty`` — the store must not
    count its own output as source damage.  Parsed by splitting off the
    status column rather than by fixed offset (``_run_git`` strips the
    output, which eats the leading space of the first line).
    """
    parts = porcelain_line.strip().split(None, 1)
    if len(parts) != 2:
        return False
    path = parts[1].split(" -> ")[-1].strip().strip('"')
    name = path.rsplit("/", 1)[-1]
    return name.startswith("BENCH_") and ".json" in name


#: JSON scalar types allowed as bench-entry field values.
_SCALAR_TYPES = (str, int, float, bool, type(None))


def validate_entry(entry: Dict[str, object]) -> None:
    """Validate one measurement against the trajectory schema.

    An entry is a non-empty flat dict of string keys to JSON scalars
    (no nesting, no NaN/inf — those round-trip inconsistently), and may
    not smuggle in the stamped ``timestamp``/``git_sha`` fields.
    Entries declaring ``bench: "batched"`` additionally carry the
    batched-kernel shape fields: a positive integer ``chunk_records``
    and a ``batched_residue_ratio`` in ``[0, 1]`` — the two numbers a
    trajectory reader needs to interpret a batched throughput figure.
    Entries declaring ``bench: "sharded"`` carry the sharded-replay
    shape: positive integers ``shards`` and ``epoch_records`` plus a
    positive ``speedup`` (sharded wall-clock over single-process
    wall-clock for the same replay).  Entries declaring
    ``bench: "faults"`` carry the chaos-run shape: non-negative integer
    ``retries``, ``timeouts`` and ``quarantines`` counters — what the
    fault-tolerance machinery had to absorb for the run to finish
    bit-identical.  Entries declaring ``bench: "serve"`` carry the
    service load-run shape: positive integers ``requests`` and
    ``concurrency``, non-negative integers ``coalesced`` and
    ``warm_hits``, a positive ``throughput_rps`` and non-negative
    ``p50_ms``/``p99_ms`` latency percentiles.  Entries declaring
    ``bench: "scenarios"`` carry the generated-workload-set shape: a
    positive integer ``families``, a non-negative integer
    ``generator_seed`` (together they reproduce the exact set) and a
    positive ``gen_records_per_s`` stream-generation throughput.  Raises
    :class:`ValueError` naming the offending
    field, so a malformed bench fails loudly instead of poisoning the
    persisted trajectory.
    """
    if not isinstance(entry, dict) or not entry:
        raise ValueError("bench entry must be a non-empty dict")
    for key, value in entry.items():
        if not isinstance(key, str) or not key:
            raise ValueError(f"bench entry key {key!r} is not a non-empty string")
        if key in ("timestamp", "git_sha"):
            raise ValueError(f"bench entry may not set the stamped field {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ValueError(
                f"bench entry field {key!r} has non-scalar value {value!r}"
            )
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"bench entry field {key!r} is not a finite number")
    if entry.get("bench") == "batched":
        chunk_records = entry.get("chunk_records")
        if not isinstance(chunk_records, int) or isinstance(chunk_records, bool) \
                or chunk_records <= 0:
            raise ValueError(
                "batched bench entry needs a positive integer 'chunk_records' "
                f"(got {chunk_records!r})"
            )
        ratio = entry.get("batched_residue_ratio")
        if not isinstance(ratio, (int, float)) or isinstance(ratio, bool) \
                or not 0.0 <= float(ratio) <= 1.0:
            raise ValueError(
                "batched bench entry needs a 'batched_residue_ratio' in [0, 1] "
                f"(got {ratio!r})"
            )
    if entry.get("bench") == "sharded":
        for key in ("shards", "epoch_records"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError(
                    f"sharded bench entry needs a positive integer {key!r} "
                    f"(got {value!r})"
                )
        speedup = entry.get("speedup")
        if not isinstance(speedup, (int, float)) or isinstance(speedup, bool) \
                or not speedup > 0:
            raise ValueError(
                "sharded bench entry needs a positive 'speedup' "
                f"(got {speedup!r})"
            )
    if entry.get("bench") == "faults":
        for key in ("retries", "timeouts", "quarantines"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(
                    f"faults bench entry needs a non-negative integer {key!r} "
                    f"(got {value!r})"
                )
    if entry.get("bench") == "serve":
        for key in ("requests", "concurrency"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise ValueError(
                    f"serve bench entry needs a positive integer {key!r} "
                    f"(got {value!r})"
                )
        for key in ("coalesced", "warm_hits"):
            value = entry.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(
                    f"serve bench entry needs a non-negative integer {key!r} "
                    f"(got {value!r})"
                )
        throughput = entry.get("throughput_rps")
        if not isinstance(throughput, (int, float)) or isinstance(throughput, bool) \
                or not throughput > 0:
            raise ValueError(
                "serve bench entry needs a positive 'throughput_rps' "
                f"(got {throughput!r})"
            )
        for key in ("p50_ms", "p99_ms"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(
                    f"serve bench entry needs a non-negative {key!r} "
                    f"(got {value!r})"
                )
    if entry.get("bench") == "scenarios":
        families = entry.get("families")
        if not isinstance(families, int) or isinstance(families, bool) \
                or families <= 0:
            raise ValueError(
                "scenarios bench entry needs a positive integer 'families' "
                f"(got {families!r})"
            )
        generator_seed = entry.get("generator_seed")
        if not isinstance(generator_seed, int) or isinstance(generator_seed, bool) \
                or generator_seed < 0:
            raise ValueError(
                "scenarios bench entry needs a non-negative integer "
                f"'generator_seed' (got {generator_seed!r})"
            )
        rate = entry.get("gen_records_per_s")
        if not isinstance(rate, (int, float)) or isinstance(rate, bool) \
                or not rate > 0:
            raise ValueError(
                "scenarios bench entry needs a positive 'gen_records_per_s' "
                f"(got {rate!r})"
            )


#: Sentinel distinguishing "file exists but is not JSON" from "no file".
_PARSE_FAILED = object()


def _parse_log(path: Union[str, Path]):
    """Parse a trajectory file: JSON value, ``None`` (no file), or sentinel.

    Returns :data:`_PARSE_FAILED` only when the file exists but cannot be
    parsed at all — the one case where overwriting would destroy bytes we
    cannot interpret, so the caller preserves them first.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return None
    try:
        return json.loads(text)
    except ValueError:
        return _PARSE_FAILED


def _salvage(data) -> Dict[str, object]:
    """Coerce a parsed JSON value into a well-formed log, keeping what's valid.

    A parsable file with a stale schema or stray non-dict entries keeps
    its well-formed dict entries instead of silently discarding the whole
    history (the pre-fix behaviour that could wipe the trajectory on the
    next append).
    """
    if not isinstance(data, dict):
        return {"schema": BENCH_LOG_SCHEMA, "entries": []}
    entries = data.get("entries")
    if not isinstance(entries, list):
        return {"schema": BENCH_LOG_SCHEMA, "entries": []}
    return {
        "schema": BENCH_LOG_SCHEMA,
        "entries": [e for e in entries if isinstance(e, dict)],
    }


def load_bench_log(path: Union[str, Path]) -> Dict[str, object]:
    """Read a trajectory file, salvaging whatever valid entries it holds.

    Unreadable or unparsable files degrade to an empty log (see
    :func:`_salvage` for the shape-repair rules applied to parsable
    ones); this accessor never touches the filesystem beyond reading.
    """
    data = _parse_log(path)
    if data is None or data is _PARSE_FAILED:
        return {"schema": BENCH_LOG_SCHEMA, "entries": []}
    return _salvage(data)


def _preserve_corrupt_file(path: Path) -> None:
    """Move an unparsable trajectory aside rather than overwriting it.

    The backup name never clobbers an earlier backup: ``<name>.corrupt``,
    then ``<name>.corrupt-1``, ``-2``, ...
    """
    backup = path.with_name(path.name + ".corrupt")
    suffix = 0
    while backup.exists():
        suffix += 1
        backup = path.with_name(f"{path.name}.corrupt-{suffix}")
    try:
        os.replace(path, backup)
    except OSError:
        pass


def append_bench_entry(
    path: Union[str, Path],
    entry: Dict[str, object],
    repo_root: Union[str, Path, None] = None,
) -> Optional[Path]:
    """Append one measurement to the trajectory file at *path*.

    The entry is validated against the schema first (:func:`validate_entry`
    raises ``ValueError`` on damage), then stamped with an ISO-8601 UTC
    timestamp and the current git sha (``+dirty`` on a modified tree;
    see :func:`git_sha`).  The write is atomic (temp file +
    ``os.replace``), so concurrent bench processes never tear the file —
    last writer wins, which is fine for an append-only perf log.  A
    pre-existing file that cannot be parsed at all is preserved as
    ``<name>.corrupt`` instead of being silently replaced, so history is
    never destroyed by one bad write.  Returns the path written, or
    ``None`` when logging is disabled.
    """
    validate_entry(entry)
    if not bench_logging_enabled():
        return None
    path = Path(path)
    parsed = _parse_log(path)
    if parsed is _PARSE_FAILED:
        _preserve_corrupt_file(path)
        parsed = None
    data = _salvage(parsed) if parsed is not None else {
        "schema": BENCH_LOG_SCHEMA,
        "entries": [],
    }
    stamped = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(repo_root if repo_root is not None else path.parent),
    }
    stamped.update(entry)
    entries: List[object] = list(data["entries"])
    entries.append(stamped)
    data["entries"] = entries[-MAX_ENTRIES:]

    return atomic_write_json(path, data)


def latest_entry(
    path: Union[str, Path], **filters: object
) -> Optional[Dict[str, object]]:
    """Return the newest entry matching all *filters* (field == value)."""
    for entry in reversed(load_bench_log(path)["entries"]):
        if isinstance(entry, dict) and all(
            entry.get(key) == value for key, value in filters.items()
        ):
            return entry
    return None
