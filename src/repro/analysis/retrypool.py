"""A process pool that survives its workers: retry, timeout, rebuild.

``concurrent.futures.ProcessPoolExecutor`` has three failure modes that
a long-running sweep service cannot tolerate:

* an exception in one task aborts a plain ``pool.map`` and discards
  every sibling result still in flight;
* a worker that dies (OOM kill, segfault) raises ``BrokenProcessPool``
  and poisons the whole pool — every queued future fails, and the pool
  object is unusable afterwards;
* a worker that hangs blocks ``pool.map`` forever; there is no per-task
  timeout and no way to kill a single worker.

:func:`run_tasks` is the shared answer for both the sweep executor and
sharded replay.  It submits at most ``worker_count`` tasks at a time (a
sliding window, so every in-flight future has a known submission time
for deadline tracking), collects with ``wait(FIRST_COMPLETED)``, and on
failure applies a deterministic :class:`RetryPolicy`: failed tasks are
requeued with exponential backoff until their attempts are exhausted; a
broken or deadline-blown pool is killed (workers terminated and joined,
never leaked) and rebuilt, requeueing only the tasks that were lost.
``KeyboardInterrupt`` shuts the pool down promptly and returns the
results finished so far instead of leaking workers.

Retry backoff is executed *inside* the worker (sleep before running),
so a delayed retry never blocks the parent from collecting sibling
results; the delay is folded into that task's deadline.

Determinism note: when a worker dies, the pool cannot tell which task
killed it — every in-flight future fails identically.  All of them get
a ``worker-lost`` attempt; innocent tasks succeed on requeue, and with
deterministic faults the culprit exhausts its attempts.  This is the
same convergence argument chaos tests rely on throughout.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro import faults
from repro.errors import ConfigurationError

#: Grace period when joining terminated worker processes.
_JOIN_TIMEOUT_S = 5.0


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry/timeout policy for pooled execution.

    ``max_attempts`` bounds tries per task (1 = no retry).  Attempt *n*
    (n >= 2) is delayed by ``base_delay_s * 2**(n-2)`` seconds of
    exponential backoff.  ``timeout_s`` bounds one attempt's wall-clock
    from submission; an overdue task's worker is killed with the pool
    and the task is charged a ``timeout`` attempt.  ``timeout_s=None``
    disables deadlines entirely.
    """

    max_attempts: int = 1
    base_delay_s: float = 0.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ConfigurationError("retry base_delay_s must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("retry timeout_s must be positive")

    def delay_for(self, attempt: int) -> float:
        """Backoff before *attempt* (1-based; the first try is free)."""
        if attempt <= 1 or self.base_delay_s == 0:
            return 0.0
        return self.base_delay_s * (2.0 ** (attempt - 2))


@dataclass(frozen=True)
class TaskFailure:
    """One task that permanently failed (or was interrupted)."""

    index: int
    key: str
    kind: str  # "error" | "timeout" | "worker-lost" | "interrupted"
    attempts: int
    error: str


@dataclass
class PoolReport:
    """What :func:`run_tasks` accomplished, exhaustively accounted.

    ``results`` maps task index to result for every task that finished;
    ``failures`` lists the rest.  The counters aggregate what the retry
    machinery had to do, and feed the ``bench:"faults"`` trajectory.
    """

    results: Dict[int, object] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted


def _invoke(
    worker: Callable[[object], object],
    payload: object,
    attempt: int,
    delay_s: float,
    plan: Optional[faults.FaultPlan],
) -> object:
    """Run one attempt inside a pool worker.

    Installs the fault plan (shipped explicitly — spawn-safe, and fork
    inheritance would go stale after an executor-side ``install``), sets
    the ambient attempt number for rule matching, and sleeps the backoff
    here rather than in the parent so sibling collection never blocks.
    An already-matching plan is left alone so per-process ``fires=``
    counters survive across tasks reusing the same worker.
    """
    if plan is not None and faults.active() != plan:
        faults.install(plan)
    faults.set_attempt(attempt)
    try:
        if delay_s > 0:
            time.sleep(delay_s)
        return worker(payload)
    finally:
        faults.set_attempt(1)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down *now*, terminating and joining its workers.

    ``shutdown(wait=False)`` alone leaks live processes (they linger
    until their current task returns — forever, for a hung worker).
    Termination uses the private ``_processes`` map because the public
    API offers no kill switch; guarded so a future stdlib change
    degrades to a plain shutdown instead of crashing.
    """
    try:
        processes = list(getattr(pool, "_processes", {}).values())
    except Exception:
        processes = []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(_JOIN_TIMEOUT_S)
        except Exception:
            pass


@dataclass
class _InFlight:
    """Bookkeeping for one submitted attempt."""

    index: int
    attempt: int
    deadline: Optional[float]


def run_tasks(
    payloads: Sequence[object],
    worker: Callable[[object], object],
    policy: RetryPolicy = RetryPolicy(),
    max_workers: int = 1,
    keep_going: bool = False,
    keys: Optional[Sequence[str]] = None,
) -> PoolReport:
    """Run ``worker(payload)`` for every payload with retry and timeout.

    Results preserve payload order via their indices in the report.
    With ``keep_going`` every task runs to success or exhaustion; without
    it the first permanent failure stops submission (finished results
    are still returned).  ``keys`` labels tasks in failure records.

    Inline fast path: a single worker (or single payload) with no
    deadline runs in-process — same retry semantics, no pool overhead.
    A ``timeout_s`` forces the pool path even for one task, because an
    in-process hang cannot be killed.
    """
    keys = list(keys) if keys is not None else [str(i) for i in range(len(payloads))]
    if len(keys) != len(payloads):
        raise ConfigurationError("keys must match payloads one-to-one")
    report = PoolReport()
    if not payloads:
        return report
    plan = faults.active()
    shipped_plan = plan if plan else None

    if (max_workers <= 1 or len(payloads) == 1) and policy.timeout_s is None:
        # Inline tasks run in this process where the plan is already
        # ambient; shipping it would re-install and reset fire counters.
        _run_inline(payloads, worker, policy, keep_going, keys, report, None)
        return report
    _run_pooled(payloads, worker, policy, max_workers, keep_going, keys,
                report, shipped_plan)
    return report


def _run_inline(payloads, worker, policy, keep_going, keys, report, plan):
    """Serial execution with the same retry accounting as the pool."""
    for index, payload in enumerate(payloads):
        attempt = 1
        while True:
            try:
                report.results[index] = _invoke(
                    worker, payload, attempt, policy.delay_for(attempt), plan
                )
            except KeyboardInterrupt:
                report.interrupted = True
                _mark_interrupted(report, keys, [index], attempt)
                _mark_interrupted(
                    report, keys, range(index + 1, len(payloads)), 0
                )
                return
            except Exception as exc:
                if attempt >= policy.max_attempts:
                    report.failures.append(TaskFailure(
                        index, keys[index], "error", attempt, _render(exc)
                    ))
                    if not keep_going:
                        return
                    break
                attempt += 1
                report.retries += 1
                continue
            # Fire the collection fault site inline too — the pooled
            # path fires it after each gathered result, and a chaos rule
            # targeting it must not silently no-op on 1-worker sweeps.
            # The task's own result is already collected, so (matching
            # the pooled semantics, where the finished future has left
            # in_flight) an injected interrupt here marks only the
            # *remaining* tasks interrupted.
            try:
                faults.fire("pool.collect", key=str(index))
            except KeyboardInterrupt:
                report.interrupted = True
                _mark_interrupted(
                    report, keys, range(index + 1, len(payloads)), 0
                )
                return
            break


def _mark_interrupted(report, keys, indices, attempts):
    for index in indices:
        report.failures.append(TaskFailure(
            index, keys[index], "interrupted", attempts, "KeyboardInterrupt"
        ))


def _render(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_pooled(payloads, worker, policy, max_workers, keep_going, keys,
                report, plan):
    """Sliding-window pooled execution with kill/rebuild recovery."""
    worker_count = min(max_workers, len(payloads))
    queue = deque(range(len(payloads)))
    attempts = [0] * len(payloads)
    pool = ProcessPoolExecutor(max_workers=worker_count)
    in_flight: Dict[object, _InFlight] = {}

    def submit_ready() -> None:
        while queue and len(in_flight) < worker_count:
            index = queue.popleft()
            attempts[index] += 1
            delay = policy.delay_for(attempts[index])
            deadline = (
                time.monotonic() + delay + policy.timeout_s
                if policy.timeout_s is not None else None
            )
            future = pool.submit(
                _invoke, worker, payloads[index], attempts[index], delay, plan
            )
            in_flight[future] = _InFlight(index, attempts[index], deadline)

    def fail_or_requeue(index: int, kind: str, error: str) -> bool:
        """Charge one failed attempt; requeue or record. True = permanent."""
        if attempts[index] < policy.max_attempts:
            report.retries += 1
            queue.append(index)
            return False
        report.failures.append(TaskFailure(
            index, keys[index], kind, attempts[index], error
        ))
        return True

    def rebuild_pool(overdue: List[object]) -> None:
        """Kill the pool, requeue what was lost, start a fresh pool."""
        nonlocal pool
        _kill_pool(pool)
        report.pool_rebuilds += 1
        for future, entry in list(in_flight.items()):
            if future in overdue:
                continue  # already charged by the caller
            # Innocent bystanders: their attempt died with the pool, but
            # it was not their fault — requeue without charging it.
            attempts[entry.index] -= 1
            queue.append(entry.index)
        in_flight.clear()
        pool = ProcessPoolExecutor(max_workers=worker_count)

    stop = False
    try:
        submit_ready()
        while in_flight:
            wait_s = None
            if policy.timeout_s is not None:
                now = time.monotonic()
                wait_s = max(
                    0.0,
                    min(e.deadline for e in in_flight.values()) - now,
                )
            done, _pending = wait(
                set(in_flight), timeout=wait_s, return_when=FIRST_COMPLETED
            )

            if not done:
                # Deadline expired with nothing finished: at least one
                # worker is hung.  The only kill switch is pool-wide.
                now = time.monotonic()
                overdue = [
                    future for future, entry in in_flight.items()
                    if entry.deadline is not None and entry.deadline <= now
                ]
                if not overdue:
                    continue  # spurious wakeup; recompute and re-wait
                for future in overdue:
                    entry = in_flight[future]
                    report.timeouts += 1
                    if fail_or_requeue(
                        entry.index, "timeout",
                        f"attempt exceeded {policy.timeout_s:g}s deadline",
                    ) and not keep_going:
                        stop = True
                rebuild_pool(overdue)
                if stop:
                    return
                submit_ready()
                continue

            broken = False
            for future in done:
                entry = in_flight.pop(future)
                try:
                    result = future.result()
                except KeyboardInterrupt:
                    raise
                except (BrokenProcessPool, CancelledError):
                    # A worker died; every in-flight future is poisoned.
                    if fail_or_requeue(
                        entry.index, "worker-lost",
                        "worker process died (pool broken)",
                    ) and not keep_going:
                        stop = True
                    broken = True
                except Exception as exc:
                    if fail_or_requeue(
                        entry.index, "error", _render(exc)
                    ) and not keep_going:
                        stop = True
                else:
                    report.results[entry.index] = result
                    faults.fire("pool.collect", key=str(entry.index))
            if broken:
                # Remaining in-flight futures are poisoned too: charge
                # each a worker-lost attempt, then rebuild.
                for future, entry in list(in_flight.items()):
                    if fail_or_requeue(
                        entry.index, "worker-lost",
                        "worker process died (pool broken)",
                    ) and not keep_going:
                        stop = True
                in_flight.clear()
                _kill_pool(pool)
                report.pool_rebuilds += 1
                pool = ProcessPoolExecutor(max_workers=worker_count)
            if stop:
                return
            submit_ready()
    except KeyboardInterrupt:
        report.interrupted = True
        interrupted = sorted(
            [(e.index, e.attempt) for e in in_flight.values()]
            + [(index, attempts[index]) for index in queue]
        )
        for index, attempt in interrupted:
            report.failures.append(TaskFailure(
                index, keys[index], "interrupted", attempt,
                "KeyboardInterrupt",
            ))
        in_flight.clear()
    finally:
        _kill_pool(pool)
