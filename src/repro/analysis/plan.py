"""Declarative run plans: picklable specs for every simulation the paper needs.

Every figure in the paper is a sweep over (benchmark x policy x probe-filter
size x thread/process layout).  This module makes those sweeps first-class:

* :class:`ExperimentSettings` — the harness-wide knobs (down-scaling factor,
  access counts, seeds), overridable from ``REPRO_BENCH_*`` environment
  variables.
* :class:`RunSpec` — one fully-determined simulation run.  A spec is frozen,
  hashable and picklable, so it can key caches, cross process boundaries,
  and rebuild its workload stream *deterministically* anywhere: the same
  spec always produces the bit-identical access trace and therefore the
  bit-identical :class:`~repro.stats.snapshot.MachineSnapshot`.
* :class:`SweepPlan` — an ordered, de-duplicated collection of specs, with
  builders enumerating the grids behind Figures 3a-3h and Figure 4.

The executor layer (:mod:`repro.analysis.executor`) consumes plans; the
figures and the ``python -m repro sweep`` command line produce them.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.system.config import DEFAULT_EXPERIMENT_SCALE, SystemConfig, experiment_config
from repro.system.fastcore import ENGINES, resolve_engine
from repro.trace.io import read_trace
from repro.trace.record import AccessRecord
from repro.workloads.base import SyntheticWorkload
from repro.workloads.multiprocess import build_multiprocess_spec, generate_multiprocess
from repro.workloads.registry import (
    MICROBENCH_FAMILIES,
    MULTIPROCESS_BENCHMARKS,
    PAPER_BENCHMARKS,
    build_spec,
    is_registered,
)

#: Nominal probe-filter sizes swept by Figure 3h (bytes, paper units).
FIG3H_PF_SIZES: Tuple[int, ...] = (512 * 1024, 256 * 1024, 128 * 1024)

#: Nominal probe-filter sizes swept by Figure 4 (bytes, paper units).
FIG4_PF_SIZES: Tuple[int, ...] = (
    512 * 1024,
    256 * 1024,
    128 * 1024,
    64 * 1024,
    32 * 1024,
)

#: Thread/process layouts a spec may request: the paper's 16-thread runs
#: and the Section III-B two-process runs.
LAYOUTS: Tuple[str, ...] = ("16t", "2p")


def env_int(name: str, default: int) -> int:
    """Read an integer environment override, falling back on bad values."""
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


def seed_for(benchmark: str, base_seed: int = 0) -> int:
    """Stable per-benchmark seed, perturbed by the harness base seed.

    Uses a CRC-32 digest of the benchmark name so that distinct names get
    distinct seeds (a plain character sum would give anagram benchmarks —
    and any same-multiset renames — identical access streams).  The value
    is a pure function of its inputs, so worker processes derive the same
    seed as the parent without any shared state.
    """
    return base_seed * 1_000_003 + zlib.crc32(benchmark.encode("utf-8"))


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared settings for the experiment harness.

    Attributes
    ----------
    scale:
        Common down-scaling factor applied to caches, probe filters and
        workload footprints (see DESIGN.md §5).
    accesses:
        Compute-phase accesses per 16-thread run.
    multiprocess_accesses:
        Compute-phase accesses per copy in the two-process runs.
    seed:
        Base seed offset applied to every workload.
    """

    scale: int = DEFAULT_EXPERIMENT_SCALE
    accesses: int = 20_000
    multiprocess_accesses: int = 8_000
    seed: int = 0

    @classmethod
    def from_environment(cls) -> "ExperimentSettings":
        """Build settings honouring ``REPRO_BENCH_*`` environment overrides."""
        return cls(
            scale=env_int("REPRO_BENCH_SCALE", DEFAULT_EXPERIMENT_SCALE),
            accesses=env_int("REPRO_BENCH_ACCESSES", 20_000),
            multiprocess_accesses=env_int("REPRO_BENCH_MP_ACCESSES", 8_000),
            seed=env_int("REPRO_BENCH_SEED", 0),
        )

    def quick(self, accesses: int = 12_000) -> "ExperimentSettings":
        """A reduced copy for unit tests and smoke runs."""
        return replace(
            self, accesses=accesses, multiprocess_accesses=max(4_000, accesses // 3)
        )


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    A spec carries everything needed to reproduce a run from scratch —
    benchmark, directory policy, nominal probe-filter size, thread/process
    layout, memory pressure and the harness settings — and nothing else.
    Two equal specs always produce bit-identical snapshots, which is what
    lets the executor fan runs out across processes and cache their
    results on disk.

    ``trace_source`` optionally points the spec at a recorded trace file:
    the run then replays that trace instead of regenerating the stream.
    A correctly recorded trace (see
    :meth:`~repro.analysis.executor.SweepExecutor`'s ``trace_dir``) holds
    exactly the stream the spec would generate, so the snapshot is
    bit-identical either way — replay is purely an execution strategy,
    but it is kept in the spec (and hence in the cache identity) so a
    hand-substituted foreign trace can never alias a generated run's
    cache entry.

    ``engine`` selects the simulation core (``"packed"`` or
    ``"reference"``; the default honours ``$REPRO_ENGINE``, else
    packed).  The engines are verified bit-identical, but the
    field still participates in the cache identity (via
    :meth:`cache_token`'s ``asdict``) so snapshots produced by the two
    implementations can never alias each other in the on-disk cache —
    an engine-difference bug must surface as a test failure, not be
    masked by a stale cache hit.
    """

    benchmark: str
    policy: str
    pf_size: int = 512 * 1024
    layout: str = "16t"
    frames_per_node: Optional[int] = None
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    trace_source: Optional[str] = None
    # Resolved at construction time (not import time) so a plan built
    # under REPRO_ENGINE=reference really runs — and caches — as reference.
    engine: str = field(default_factory=lambda: resolve_engine(None))

    def __post_init__(self) -> None:
        # Fail at spec construction (plan-build time), not minutes into a
        # sweep when the bad run finally executes.
        if not is_registered(self.benchmark):
            raise ConfigurationError(f"unknown benchmark {self.benchmark!r}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown simulation engine {self.engine!r}; "
                f"expected one of {ENGINES}"
            )
        if self.layout not in LAYOUTS:
            raise ConfigurationError(
                f"unknown layout {self.layout!r}; expected one of {LAYOUTS}"
            )
        if self.layout == "2p" and self.benchmark not in MULTIPROCESS_BENCHMARKS:
            raise ConfigurationError(
                f"benchmark {self.benchmark!r} is not part of the multi-process "
                f"study; expected one of {MULTIPROCESS_BENCHMARKS}"
            )
        if self.policy not in ("baseline", "allarm"):
            raise ConfigurationError(f"unknown directory policy {self.policy!r}")
        if self.pf_size <= 0:
            raise ConfigurationError("pf_size must be positive")

    # ------------------------------------------------------------------
    # Derived identity
    # ------------------------------------------------------------------
    @property
    def workload_name(self) -> str:
        """Label recorded in results ("barnes", "barnes-2p", ...)."""
        return self.benchmark if self.layout == "16t" else f"{self.benchmark}-2p"

    @property
    def workload_seed(self) -> int:
        """Deterministic seed of this spec's workload stream."""
        base = seed_for(self.benchmark, self.settings.seed)
        return base if self.layout == "16t" else base + 1

    def with_trace(self, path) -> "RunSpec":
        """Return a copy that replays the trace at *path* when executed."""
        return replace(self, trace_source=str(path))

    def with_engine(self, engine: str) -> "RunSpec":
        """Return a copy that runs on a different simulation engine."""
        return replace(self, engine=engine)

    def stream_token(self) -> str:
        """Canonical identity of this spec's *workload stream*.

        Unlike :meth:`cache_token`, this covers only the fields the
        access stream depends on — benchmark, layout, access counts,
        footprint scale and seed — so every policy and probe-filter
        variant of one workload shares a single recorded trace.
        """
        return json.dumps(
            {
                "benchmark": self.benchmark,
                "layout": self.layout,
                "accesses": self.settings.accesses,
                "multiprocess_accesses": self.settings.multiprocess_accesses,
                "scale": self.settings.scale,
                "seed": self.settings.seed,
            },
            sort_keys=True,
        )

    def stream_digest(self) -> str:
        """SHA-256 of :meth:`stream_token` (names recorded trace files)."""
        return hashlib.sha256(self.stream_token().encode("utf-8")).hexdigest()

    def cache_token(self) -> str:
        """Canonical string identity of the run (excludes code version).

        Derived from every field via :func:`dataclasses.asdict` so that a
        future field added to the spec (or its settings) is part of the
        identity automatically — a hand-maintained field list would let a
        forgotten field silently alias distinct runs to one cache entry.
        """
        return json.dumps(asdict(self), sort_keys=True, default=repr)

    def digest(self) -> str:
        """SHA-256 of the canonical identity (content-addressed cache key)."""
        return hashlib.sha256(self.cache_token().encode("utf-8")).hexdigest()

    def describe(self) -> Dict[str, object]:
        """Plain-dict view of the spec (stored beside cached snapshots)."""
        return {
            "benchmark": self.benchmark,
            "policy": self.policy,
            "pf_size": self.pf_size,
            "layout": self.layout,
            "frames_per_node": self.frames_per_node,
            "scale": self.settings.scale,
            "accesses": self.settings.accesses,
            "multiprocess_accesses": self.settings.multiprocess_accesses,
            "seed": self.settings.seed,
            "trace_source": self.trace_source,
            "engine": self.engine,
        }

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def config(self) -> SystemConfig:
        """Build the machine configuration this spec runs on."""
        return experiment_config(
            self.policy,
            scale=self.settings.scale,
            nominal_probe_filter_coverage=self.pf_size,
            frames_per_node=self.frames_per_node,
        )

    def access_stream(self) -> Iterator[AccessRecord]:
        """Rebuild the deterministic access stream of this run.

        Workers call this instead of shipping traces across process
        boundaries: the stream is a pure function of the spec.  When the
        spec carries a ``trace_source``, the stream is replayed from that
        recorded trace instead of being regenerated.
        """
        if self.trace_source is not None:
            return read_trace(self.trace_source)
        if self.layout == "16t":
            spec = build_spec(
                self.benchmark,
                total_accesses=self.settings.accesses,
                seed=self.workload_seed,
            ).with_footprint_scale(self.settings.scale)
            return SyntheticWorkload(spec).generate()

        mp_spec = build_multiprocess_spec(
            self.benchmark,
            total_accesses_per_copy=self.settings.multiprocess_accesses,
            seed=self.workload_seed,
        )
        scaled_copies = tuple(
            copy.with_footprint_scale(self.settings.scale) for copy in mp_spec.copies
        )
        mp_spec = replace(mp_spec, copies=scaled_copies)
        return generate_multiprocess(mp_spec)

    def access_chunks(self, chunk_size: int = 8192):
        """The run's access stream as columnar ``AccessChunk`` blocks.

        The batched engine's ingestion path: recorded v3 blocked traces
        stream their stored blocks with no per-record decode; every
        other source (v1/v2 traces, synthetic generators) is packed into
        chunks of *chunk_size* records.  Record order is identical to
        :meth:`access_stream`.
        """
        if self.trace_source is not None:
            from repro.trace.io import read_trace_chunks

            return read_trace_chunks(self.trace_source, chunk_size)
        from repro.system.batchcore import chunk_records

        return chunk_records(self.access_stream(), chunk_size)


@dataclass(frozen=True)
class SweepPlan:
    """An ordered collection of runs behind one figure (or several)."""

    name: str
    specs: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if len(set(self.specs)) != len(self.specs):
            raise ConfigurationError(f"plan {self.name!r} contains duplicate specs")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def merged_with(self, other: "SweepPlan", name: Optional[str] = None) -> "SweepPlan":
        """Union of two plans, preserving order and dropping duplicates."""
        seen = set()
        specs: List[RunSpec] = []
        for spec in tuple(self.specs) + tuple(other.specs):
            if spec not in seen:
                seen.add(spec)
                specs.append(spec)
        return SweepPlan(name=name or f"{self.name}+{other.name}", specs=tuple(specs))

    def with_engine(self, engine: str) -> "SweepPlan":
        """Return a copy of the plan with every spec on *engine*."""
        return SweepPlan(
            name=self.name,
            specs=tuple(spec.with_engine(engine) for spec in self.specs),
        )


# ----------------------------------------------------------------------
# Plan builders: the exact grids behind the paper's figures
# ----------------------------------------------------------------------
def figure3_plan(
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
    pf_size: int = 512 * 1024,
) -> SweepPlan:
    """The sixteen (benchmark x policy) runs shared by Figures 3a-3g."""
    names = PAPER_BENCHMARKS if benchmarks is None else list(benchmarks)
    specs = tuple(
        RunSpec(benchmark=b, policy=p, pf_size=pf_size, settings=settings)
        for b in names
        for p in ("baseline", "allarm")
    )
    return SweepPlan(name="fig3", specs=specs)


def figure3h_plan(
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
    pf_sizes: Tuple[int, ...] = FIG3H_PF_SIZES,
) -> SweepPlan:
    """Figure 3h: the largest-size baseline reference plus ALLARM at each size."""
    if not pf_sizes:
        raise ConfigurationError("figure3h_plan needs at least one pf size")
    names = PAPER_BENCHMARKS if benchmarks is None else list(benchmarks)
    reference_size = max(pf_sizes)
    specs: List[RunSpec] = []
    for b in names:
        specs.append(
            RunSpec(
                benchmark=b, policy="baseline", pf_size=reference_size, settings=settings
            )
        )
        for size in pf_sizes:
            specs.append(
                RunSpec(benchmark=b, policy="allarm", pf_size=size, settings=settings)
            )
    return SweepPlan(name="fig3h", specs=tuple(specs))


def figure4_plan(
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
    pf_sizes: Tuple[int, ...] = FIG4_PF_SIZES,
    policies: Tuple[str, ...] = ("baseline", "allarm"),
) -> SweepPlan:
    """Figure 4: two-process runs swept over probe-filter sizes."""
    names = MULTIPROCESS_BENCHMARKS if benchmarks is None else list(benchmarks)
    specs = tuple(
        RunSpec(
            benchmark=b, policy=p, pf_size=size, layout="2p", settings=settings
        )
        for b in names
        for p in policies
        for size in pf_sizes
    )
    return SweepPlan(name="fig4", specs=specs)


#: Nominal probe-filter sizes the microbenchmark plan sweeps: the paper's
#: default plus a starved filter, where the families' sharing extremes
#: separate the policies most clearly.
MICRO_PF_SIZES: Tuple[int, ...] = (512 * 1024, 128 * 1024)


def microbench_plan(
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
    pf_sizes: Tuple[int, ...] = MICRO_PF_SIZES,
) -> SweepPlan:
    """Both policies over the microbenchmark families at two filter sizes.

    Exercises probe-filter policies on the canonical sharing patterns
    (false sharing, migratory locks, streaming scans, read-mostly
    hotspots) the paper's eight benchmarks only blend together.
    """
    names = MICROBENCH_FAMILIES if benchmarks is None else list(benchmarks)
    specs = tuple(
        RunSpec(benchmark=b, policy=p, pf_size=size, settings=settings)
        for b in names
        for p in ("baseline", "allarm")
        for size in pf_sizes
    )
    return SweepPlan(name="micro", specs=specs)


#: Nominal probe-filter sizes the scenario plan sweeps: the paper's
#: default plus a starved filter (sampled working sets vary over two
#: orders of magnitude, so the starved size keeps eviction paths hot on
#: the large draws).
SCENARIO_PF_SIZES: Tuple[int, ...] = (512 * 1024, 64 * 1024)


def scenario_plan(
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
    generator_seed: Optional[int] = None,
    count: Optional[int] = None,
    pf_sizes: Tuple[int, ...] = SCENARIO_PF_SIZES,
    policies: Tuple[str, ...] = ("baseline", "allarm"),
) -> SweepPlan:
    """Both policies over a sampled scenario set at two filter sizes.

    With *benchmarks* given, those names (typically ``scenario-*`` names
    from a recorded manifest, resolved dynamically by the registry) form
    the family axis; otherwise a fresh set is sampled from
    ``generator_seed``/*count* (defaults: ``$REPRO_SCENARIO_SEED`` else
    the settings seed; ``$REPRO_SCENARIO_COUNT`` else 8).  Sampling is
    deterministic, so every worker process rebuilds the same streams
    from the spec names alone — no registration hand-off needed.
    """
    if benchmarks is not None:
        names = list(benchmarks)
    else:
        from repro.workloads.generator import sample_scenarios

        if generator_seed is None:
            generator_seed = env_int("REPRO_SCENARIO_SEED", settings.seed)
        if count is None:
            count = env_int("REPRO_SCENARIO_COUNT", 8)
        names = sample_scenarios(generator_seed, count).names
    specs = tuple(
        RunSpec(benchmark=b, policy=p, pf_size=size, settings=settings)
        for b in names
        for p in policies
        for size in pf_sizes
    )
    return SweepPlan(name="scenarios", specs=specs)


def full_plan(
    settings: ExperimentSettings, benchmarks: Optional[Iterable[str]] = None
) -> SweepPlan:
    """Every run the paper's evaluation needs, de-duplicated."""
    benchmarks = list(benchmarks) if benchmarks is not None else None
    mp = None
    if benchmarks is not None:
        # Only the Fig. 4 subset is valid for the two-process layout; an
        # empty subset simply contributes no 2p runs.
        mp = [b for b in benchmarks if b in MULTIPROCESS_BENCHMARKS]
    plan = figure3_plan(settings, benchmarks)
    plan = plan.merged_with(figure3h_plan(settings, benchmarks))
    plan = plan.merged_with(figure4_plan(settings, mp))
    return SweepPlan(name="all", specs=plan.specs)


#: Named plan builders addressable from the command line.
PLAN_BUILDERS = {
    "fig3": figure3_plan,
    "fig3h": figure3h_plan,
    "fig4": figure4_plan,
    "micro": microbench_plan,
    "scenarios": scenario_plan,
    "all": full_plan,
}


def build_plan(
    name: str,
    settings: ExperimentSettings,
    benchmarks: Optional[Iterable[str]] = None,
) -> SweepPlan:
    """Build a named plan (``fig3``, ``fig3h``, ``fig4``, ``micro`` or ``all``)."""
    try:
        builder = PLAN_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown plan {name!r}; expected one of {sorted(PLAN_BUILDERS)}"
        )
    return builder(settings, benchmarks)
