"""The packed simulation engine: :class:`PackedMachine` and engine selection.

Two engines can drive the paper's evaluation:

* ``"reference"`` — the original :class:`~repro.system.machine.Machine`
  over the dataclass/dict cache model.  Clear, introspectable, slow.
* ``"packed"`` — :class:`PackedMachine`, which swaps every node's cache
  hierarchy for the flat-array :class:`~repro.cache.packed.PackedHierarchy`,
  every node's sparse directory for the flat-array
  :class:`~repro.core.packed_directory.PackedProbeFilter`, and services
  both the hit-dominated common case (index arithmetic inlined straight
  into :meth:`PackedMachine.perform_access`) and *every* steady-state
  miss flavour — probe-filter hits, ALLARM no-allocate local misses,
  allocations into a free way, allocations that evict a probe-filter
  victim (invalidation fan-out included) and L2 eviction notifications
  (see :class:`~repro.core.packed_directory.PackedDirectoryFastPath`)
  — without leaving the packed representation.  Cold translations go
  straight to the allocator's page-table fill (no redundant memo
  re-probe) and are counted in ``translation_fills``.  The shared
  reference machinery (`Machine._service_miss`, the directory
  controller, the network) remains reachable only through the
  ``REPRO_PACKED_DEFER`` debug knob, which forces chosen structural
  events back onto the slow path so differential suites can exercise
  both implementations; each forced deferral is counted per cause in
  ``deferred_miss_causes``.

The two engines must produce **bit-identical**
:class:`~repro.stats.snapshot.MachineSnapshot`\\ s for any config and
access stream; ``tests/test_cross_engine.py`` enforces this across the
policy × probe-filter-size × eviction-mode grid on every registered
workload family.  ``packed`` is the default engine; set
``REPRO_ENGINE=reference`` (or pass ``engine="reference"``) to fall back.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Iterable, Optional, Union

from repro.cache.packed import (
    ACCESS_MISS,
    CODE_CAN_WRITE,
    CODE_IS_DIRTY,
    CODE_IS_OWNER,
    CODE_TO_STATE,
    POLICY_LRU,
    POLICY_PLRU,
    PackedHierarchy,
    plru_touch,
)
from repro.coherence.transactions import RequestKind
from repro.core.packed_directory import PackedDirectoryFastPath, PackedProbeFilter
from repro.errors import ConfigurationError
from repro.system.config import SystemConfig
from repro.system.machine import Machine

#: Engine names accepted everywhere an engine can be chosen.
ENGINES = ("reference", "packed", "batched")

#: The engine used when none is requested (verified bit-identical to the
#: reference engine; see docs/performance.md).
DEFAULT_ENGINE = "packed"

#: Structural events the packed engine can be forced to defer back onto
#: the shared reference machinery (the ``REPRO_PACKED_DEFER`` causes).
#: Nothing defers by default; the knob exists so differential suites can
#: keep exercising the reference implementations and the per-cause
#: deferral accounting.
STRUCTURAL_DEFER_CAUSES = ("pf_eviction", "l2_notification")


def resolve_structural_defer(
    value: Union[str, Iterable[str], None],
) -> FrozenSet[str]:
    """Normalise a forced-deferral request into a set of causes.

    ``None`` reads ``$REPRO_PACKED_DEFER``; strings are comma-separated
    cause lists; ``"all"`` selects every cause.  Unknown cause names are
    a :class:`ConfigurationError` (a typo must not silently run fast).
    """
    if value is None:
        value = os.environ.get("REPRO_PACKED_DEFER", "")
    if isinstance(value, str):
        names = [name.strip() for name in value.split(",") if name.strip()]
    else:
        names = list(value)
    if "all" in names:
        return frozenset(STRUCTURAL_DEFER_CAUSES)
    unknown = set(names) - set(STRUCTURAL_DEFER_CAUSES)
    if unknown:
        raise ConfigurationError(
            f"unknown structural deferral cause(s) {sorted(unknown)}; "
            f"expected a subset of {STRUCTURAL_DEFER_CAUSES} or 'all'"
        )
    return frozenset(names)


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name, defaulting from ``$REPRO_ENGINE``.

    ``None`` resolves to the ``REPRO_ENGINE`` environment variable when
    set, else :data:`DEFAULT_ENGINE`.
    """
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE") or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown simulation engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def build_machine(config: SystemConfig, engine: Optional[str] = None) -> Machine:
    """Build the machine implementation for *engine* (default: packed)."""
    engine = resolve_engine(engine)
    if engine == "packed":
        return PackedMachine(config)
    if engine == "batched":
        # Imported lazily: batchcore subclasses PackedMachine from here.
        from repro.system.batchcore import BatchedMachine

        return BatchedMachine(config)
    return Machine(config)


class PackedMachine(Machine):
    """The reference machine over packed cache arrays, with an inlined hot path.

    Construction, the directory/NUMA/network components, miss servicing
    and eviction handling are all inherited; only the node hierarchies
    (via :attr:`hierarchy_class`) and the per-access entry point differ.
    """

    hierarchy_class = PackedHierarchy
    probe_filter_class = PackedProbeFilter

    #: Eviction-notification modes, coded for the miss fast path.
    _EVICT_MODES = {"none": 0, "owned": 1, "dirty": 2}

    def __init__(
        self,
        config: SystemConfig,
        structural_defer: Union[str, Iterable[str], None] = None,
    ) -> None:
        super().__init__(config)
        # Hot-path bindings: one list index replaces the node -> caches ->
        # l1 attribute chain, and the line shift/mask pair replaces the
        # div/mod set arithmetic.  The arrays themselves live on the
        # PackedCache objects and are mutated in place, so these aliases
        # never go stale.
        self._l1d = [node.caches.l1d for node in self.nodes]
        self._l1i = [node.caches.l1i for node in self.nodes]
        self._clocks = [node.clock for node in self.nodes]
        self._core_count = len(self.nodes)
        self._line_shift = config.line_size.bit_length() - 1
        # Alias of the allocator's translation memo (mutated in place,
        # never rebound) so the fast path can service a warm translation
        # without a call.  The memo-hit body below must mirror
        # NumaAllocator.translate exactly — including the per-page stat
        # upkeep; the allocator's own affinity check is subsumed by this
        # method's core bounds check (machine-built allocators map every
        # in-range core to a node).
        self._translation_memo = self.allocator._translation_cache
        self._translate_fill = self.allocator._translate_slow
        self._page_size = config.os.page_size
        # Miss fast path: one packed servicer per home directory, sharing
        # a lazily filled (src, dst) -> delivery-constants table.  The
        # counters below split misses between the packed path and the
        # (forced-deferral-only) reference structural path; a miss that
        # defers for several structural reasons counts once per cause in
        # the dict and once in the total.
        routes: dict = {}
        self._fast_dirs = [
            PackedDirectoryFastPath(self, node, routes) for node in self.nodes
        ]
        self._evict_mode = self._EVICT_MODES[config.directory.eviction_notification]
        self._structural_defer = resolve_structural_defer(structural_defer)
        self.fast_misses = 0
        self.deferred_misses = 0
        self.deferred_miss_causes: Dict[str, int] = {
            cause: 0 for cause in STRUCTURAL_DEFER_CAUSES
        }
        self.translation_fills = 0
        if config.core.replacement == "lru":
            # LRU (the Table I default) gets a branch-free specialisation;
            # the instance attribute shadows the generic method below.
            self.perform_access = self._perform_access_lru

    def perform_access(
        self,
        core: int,
        process_id: int,
        vaddr: int,
        is_write: bool,
        is_instruction: bool = False,
    ) -> float:
        """Execute one memory access on *core*; return its latency in ns.

        Behaviourally identical to :meth:`Machine.perform_access` (same
        counters, same replacement decisions, same latencies); the L1
        read hit — the overwhelmingly common case on the paper's
        workloads — completes after one memoized translation and one
        C-level ``array.index`` scan, with LRU touched by a single
        stamp store.
        """
        nodes = self.nodes
        if core < 0 or core >= len(nodes):
            raise ConfigurationError(
                f"core {core} out of range for a {len(nodes)}-core machine"
            )
        node = nodes[core]
        page_size = self._page_size
        vpage = vaddr // page_size
        entry = self._translation_memo.get((process_id, vpage))
        if entry is not None:
            frame_base, mapping, table_stats = entry
            table_stats.lookups += 1
            mapping.touches += 1
            paddr = frame_base + (vaddr - vpage * page_size)
        else:
            # Cold (or next-touch-pending) translation: fill the page
            # table directly, skipping the memo re-probe inside
            # NumaAllocator.translate that is known to miss.
            self.translation_fills += 1
            paddr = self._translate_fill(process_id, core, vaddr, vpage)
        line_paddr = paddr & self._line_mask
        node.clock.memory_accesses += 1

        l1 = (self._l1i if is_instruction else self._l1d)[core]
        assoc = l1.associativity
        base = ((line_paddr >> self._line_shift) & l1.set_mask) * assoc
        try:
            slot = l1.tags.index(line_paddr, base, base + assoc)
        except ValueError:
            slot = -1
        if slot >= 0 and not is_write:
            # L1 read hit: count, stamp, done.
            l1.hits += 1
            kind = l1.kind
            if kind == POLICY_LRU:
                stamp = l1.stamp + 1
                l1.stamp = stamp
                l1.stamps[slot] = stamp
            elif kind == POLICY_PLRU:
                set_index = base // assoc
                l1.plru_bits[set_index] = plru_touch(
                    l1.plru_bits[set_index], slot - base, assoc
                )
            return self._cache_latency

        code = node.caches.access_fast(line_paddr, is_write, is_instruction, slot)
        if code < ACCESS_MISS:
            return self._cache_latency
        return self._service_miss(
            node, core, line_paddr, is_write, is_instruction, code > ACCESS_MISS
        )

    def _perform_access_lru(
        self,
        core: int,
        process_id: int,
        vaddr: int,
        is_write: bool,
        is_instruction: bool = False,
    ) -> float:
        """LRU-specialised :meth:`perform_access` (identical behaviour)."""
        if core < 0 or core >= self._core_count:
            raise ConfigurationError(
                f"core {core} out of range for a {self._core_count}-core machine"
            )
        page_size = self._page_size
        vpage = vaddr // page_size
        entry = self._translation_memo.get((process_id, vpage))
        if entry is not None:
            frame_base, mapping, table_stats = entry
            table_stats.lookups += 1
            mapping.touches += 1
            paddr = frame_base + (vaddr - vpage * page_size)
        else:
            self.translation_fills += 1
            paddr = self._translate_fill(process_id, core, vaddr, vpage)
        line_paddr = paddr & self._line_mask
        self._clocks[core].memory_accesses += 1

        l1 = (self._l1i if is_instruction else self._l1d)[core]
        assoc = l1.associativity
        base = ((line_paddr >> self._line_shift) & l1.set_mask) * assoc
        try:
            slot = l1.tags.index(line_paddr, base, base + assoc)
        except ValueError:
            slot = -1
        if slot >= 0 and not is_write:
            l1.hits += 1
            stamp = l1.stamp + 1
            l1.stamp = stamp
            l1.stamps[slot] = stamp
            return self._cache_latency

        node = self.nodes[core]
        code = node.caches.access_fast(line_paddr, is_write, is_instruction, slot)
        if code < ACCESS_MISS:
            return self._cache_latency
        return self._service_miss(
            node, core, line_paddr, is_write, is_instruction, code > ACCESS_MISS
        )

    def _service_miss(
        self,
        node,
        core: int,
        line_paddr: int,
        is_write: bool,
        is_instruction: bool,
        needs_upgrade: bool,
    ) -> float:
        """Packed miss path: directory transaction and fill, array-native.

        Behaviourally identical to :meth:`Machine._service_miss` — same
        counters, same replacement and protocol decisions, same latency
        floats — but serviced through
        :class:`~repro.core.packed_directory.PackedDirectoryFastPath`
        with no ``Transaction``/``Message`` object churn.  Every
        structural event is packed too: probe-filter evictions run their
        invalidation fan-out in :meth:`PackedDirectoryFastPath._miss`,
        and L2 eviction notifications go through
        :meth:`PackedDirectoryFastPath.handle_eviction`.  The shared
        reference machinery runs only when ``REPRO_PACKED_DEFER`` (or
        the ``structural_defer`` constructor argument) forces a cause
        back onto it; each forced deferral counts once per cause in
        ``deferred_miss_causes`` and once in ``deferred_misses``.
        """
        fast = self._fast_dirs[line_paddr // self._bytes_per_node]
        pf = fast.pf
        slot = pf.find_slot(line_paddr)
        forced = self._structural_defer
        if (
            forced
            and "pf_eviction" in forced
            and slot < 0
            and not pf.has_free_way(line_paddr)
            and fast.policy.should_allocate(core, fast.node_id, line_paddr)
        ):
            # Forced deferral: the allocation would evict a probe-filter
            # entry.  Nothing has been mutated yet — run the reference
            # path end to end (it also covers any L2 notification the
            # fill produces, so only this cause is counted).
            self._count_deferral("pf_eviction")
            return Machine._service_miss(
                self, node, core, line_paddr, is_write, is_instruction, needs_upgrade
            )
        self.fast_misses += 1

        caches = node.caches
        mshrs = caches.mshrs
        mshrs.allocate(
            line_paddr, RequestKind.WRITE if is_write else RequestKind.READ
        )
        latency, fill_code = fast.service(core, line_paddr, is_write, slot)
        self.transactions_serviced += 1

        if needs_upgrade:
            # The line is already resident; only its state changes (the
            # raw-array form of Cache.set_state, upgrade counting included).
            fill_writable = CODE_CAN_WRITE[fill_code]
            l2 = caches.l2
            l2_slot = l2.find(line_paddr)
            if fill_writable and not CODE_CAN_WRITE[l2.states[l2_slot]]:
                l2.upgrades += 1
            l2.states[l2_slot] = fill_code
            for l1 in (caches.l1i, caches.l1d):
                l1_slot = l1.find(line_paddr)
                if l1_slot >= 0:
                    if fill_writable and not CODE_CAN_WRITE[l1.states[l1_slot]]:
                        l1.upgrades += 1
                    l1.states[l1_slot] = fill_code
        else:
            victim = caches.l2._fill_code(line_paddr, fill_code)
            if victim is not None:
                victim_tag, victim_code, _ = victim
                caches.l1i.invalidate(victim_tag)
                caches.l1d.invalidate(victim_tag)
                mode = self._evict_mode
                if mode == 1:
                    notify = CODE_IS_OWNER[victim_code]  # owned or dirty
                elif mode == 2:
                    notify = CODE_IS_DIRTY[victim_code]
                else:
                    notify = False
                if notify:
                    if forced and "l2_notification" in forced:
                        # Forced deferral: reference machinery (messages,
                        # probe-filter update/deallocation, writeback).
                        self._count_deferral("l2_notification")
                        self.nodes[
                            victim_tag // self._bytes_per_node
                        ].directory.handle_cache_eviction(
                            core, victim_tag, CODE_TO_STATE[victim_code]
                        )
                    else:
                        self._fast_dirs[
                            victim_tag // self._bytes_per_node
                        ].handle_eviction(core, victim_tag, victim_code)
                elif CODE_IS_DIRTY[victim_code]:
                    # Even without a directory notification, dirty data
                    # must reach memory.
                    self._fast_dirs[
                        victim_tag // self._bytes_per_node
                    ].mem_writeback(victim_tag)
            (caches.l1i if is_instruction else caches.l1d)._fill_code(
                line_paddr, fill_code
            )

        mshrs.release(line_paddr)
        return self._cache_latency + latency

    # ------------------------------------------------------------------
    # Miss-path accounting
    # ------------------------------------------------------------------
    def _count_deferral(self, cause: str) -> None:
        """Record one miss deferring one structural *cause* to reference.

        A miss that defers for several causes passes through here once
        per cause, so ``deferred_miss_causes`` counts causes while
        ``deferred_misses`` still counts misses (at most once each —
        the wholesale ``pf_eviction`` fallback returns before any other
        cause can fire, and the remaining causes are mutually exclusive
        within one miss).
        """
        self.deferred_misses += 1
        self.deferred_miss_causes[cause] += 1

    def miss_path_summary(self) -> Dict[str, object]:
        """Counters describing how misses were serviced (for reports/tests).

        ``deferred_by_cause`` is the per-cause breakdown of structural
        deferrals; under default configuration (no forced deferral) every
        value — and ``deferred_misses`` itself — must be zero.
        """
        return {
            "fast_misses": self.fast_misses,
            "deferred_misses": self.deferred_misses,
            "deferred_by_cause": dict(self.deferred_miss_causes),
            "translation_fills": self.translation_fills,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedMachine(nodes={len(self.nodes)}, "
            f"policy={self.config.directory_policy})"
        )
