"""Trace-driven simulator: replays access streams against a machine.

The simulator consumes an iterable of
:class:`~repro.trace.record.AccessRecord` objects (from a synthetic
workload generator or a trace file), presents each access to the machine,
and advances the issuing core's clock by the access latency plus a fixed
amount of non-memory work per reference.  Execution time of the run is
the maximum per-core clock, so a configuration that reduces miss
latencies on the critical cores shows up directly as speedup — exactly
how the paper reports Figure 3a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SimulationError
from repro.stats.snapshot import MachineSnapshot, collect
from repro.system.config import SystemConfig
from repro.system.machine import Machine
from repro.trace.record import AccessRecord


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config: SystemConfig
    snapshot: MachineSnapshot
    accesses_simulated: int
    workload_name: str = ""

    @property
    def execution_time_ns(self) -> float:
        """Parallel execution time of the run."""
        return self.snapshot.execution_time_ns

    @property
    def policy(self) -> str:
        """Directory allocation policy the run used."""
        return self.snapshot.policy


class Simulator:
    """Drives one machine through one access trace."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.machine = Machine(config)
        self._finished = False

    # ------------------------------------------------------------------
    def run(
        self,
        accesses: Iterable[AccessRecord],
        workload_name: str = "",
        max_accesses: Optional[int] = None,
    ) -> SimulationResult:
        """Replay *accesses* to completion and return the result.

        Parameters
        ----------
        accesses:
            Iterable of access records, already interleaved across cores.
        workload_name:
            Label stored in the result (used by the experiment harness).
        max_accesses:
            Optional cap on the number of records replayed, useful for
            smoke tests on long traces.
        """
        if self._finished:
            raise SimulationError("simulator instances are single-use; build a new one")

        work_per_access = self.config.core.cpu_work_per_access_ns
        count = 0
        for record in accesses:
            if max_accesses is not None and count >= max_accesses:
                break
            self._dispatch(record, work_per_access)
            count += 1

        self._finished = True
        snapshot = collect(self.machine)
        return SimulationResult(
            config=self.config,
            snapshot=snapshot,
            accesses_simulated=count,
            workload_name=workload_name,
        )

    # ------------------------------------------------------------------
    def _dispatch(self, record: AccessRecord, work_per_access: float) -> None:
        if record.core >= self.config.core_count:
            raise SimulationError(
                f"trace references core {record.core} but the machine has "
                f"{self.config.core_count} cores"
            )
        node = self.machine.node(record.core)
        node.clock.instructions += 1
        node.clock.advance(work_per_access)
        latency = self.machine.perform_access(
            core=record.core,
            process_id=record.process_id,
            vaddr=record.vaddr,
            is_write=record.is_write,
            is_instruction=record.is_instruction,
        )
        node.clock.stall(latency)


def simulate(
    config: SystemConfig,
    accesses: Iterable[AccessRecord],
    workload_name: str = "",
    max_accesses: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    return Simulator(config).run(
        accesses, workload_name=workload_name, max_accesses=max_accesses
    )
