"""Trace-driven simulator: replays access streams against a machine.

The simulator consumes an iterable of
:class:`~repro.trace.record.AccessRecord` objects (from a synthetic
workload generator or a trace file), presents each access to the machine,
and advances the issuing core's clock by the access latency plus a fixed
amount of non-memory work per reference.  Execution time of the run is
the maximum per-core clock, so a configuration that reduces miss
latencies on the critical cores shows up directly as speedup — exactly
how the paper reports Figure 3a.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Optional, Union

from repro import faults
from repro.errors import SimulationError
from repro.ioutil import atomic_write_bytes
from repro.stats.snapshot import MachineSnapshot, collect
from repro.system.checkpoint import checkpoint_file_name
from repro.system.config import SystemConfig
from repro.system.fastcore import build_machine, resolve_engine
from repro.system.machine import Machine
from repro.trace.record import AccessRecord, AccessType


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    config: SystemConfig
    snapshot: MachineSnapshot
    accesses_simulated: int
    workload_name: str = ""
    engine: str = ""

    @property
    def execution_time_ns(self) -> float:
        """Parallel execution time of the run."""
        return self.snapshot.execution_time_ns

    @property
    def policy(self) -> str:
        """Directory allocation policy the run used."""
        return self.snapshot.policy


class Simulator:
    """Drives one machine through one access trace.

    Parameters
    ----------
    config:
        Machine description.
    engine:
        Simulation engine: ``"packed"`` (the default; flat-array cache
        state, see :mod:`repro.system.fastcore`) or ``"reference"``.
        Both produce bit-identical snapshots; ``None`` defers to the
        ``REPRO_ENGINE`` environment variable.
    """

    def __init__(self, config: SystemConfig, engine: Optional[str] = None) -> None:
        self.config = config
        self.engine = resolve_engine(engine)
        self.machine = build_machine(config, self.engine)
        self._finished = False

    # ------------------------------------------------------------------
    def restore(self, blob: bytes) -> None:
        """Restore a machine checkpoint before :meth:`run` (resume support).

        *blob* must have been produced by :meth:`Machine.checkpoint` on
        an identically configured machine of the same engine (enforced
        by the blob's config digest).  The subsequent :meth:`run` call
        continues bit-identically from the checkpointed state, provided
        the caller feeds it the remainder of the same access stream.
        """
        if self._finished:
            raise SimulationError(
                "simulator instances are single-use; build a new one"
            )
        self.machine.restore(blob)

    def run(
        self,
        accesses: Iterable[AccessRecord],
        workload_name: str = "",
        max_accesses: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_start: int = 0,
    ) -> SimulationResult:
        """Replay *accesses* to completion and return the result.

        Parameters
        ----------
        accesses:
            Iterable of access records, already interleaved across cores.
        workload_name:
            Label stored in the result (used by the experiment harness).
        max_accesses:
            Optional cap on the number of records replayed, useful for
            smoke tests on long traces.
        checkpoint_every:
            With ``checkpoint_dir``, write an atomic machine checkpoint
            (``epoch-<k>.ckpt``) after every *checkpoint_every* replayed
            accesses.  Epoch boundaries split batched chunks exactly, so
            checkpointed replay stays bit-identical to plain replay.
        checkpoint_dir:
            Directory receiving the epoch checkpoint files (created as
            needed).
        checkpoint_start:
            Number of accesses already folded into the machine before
            this call (a multiple of *checkpoint_every*): resumed runs
            pass the resume offset here so epoch numbering continues
            where the interrupted run left off.
        """
        if self._finished:
            raise SimulationError("simulator instances are single-use; build a new one")
        if checkpoint_every is not None:
            count = self._replay_checkpointed(
                accesses,
                max_accesses,
                checkpoint_every,
                checkpoint_dir,
                checkpoint_start,
            )
        elif self.engine == "batched":
            count = self._replay_chunks(accesses, max_accesses)
        else:
            count = self._replay_records(accesses, max_accesses)
        self._finished = True
        snapshot = collect(self.machine)
        return SimulationResult(
            config=self.config,
            snapshot=snapshot,
            accesses_simulated=count,
            workload_name=workload_name,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    # Replay loops
    # ------------------------------------------------------------------
    def _replay_records(
        self, accesses: Iterable[AccessRecord], max_accesses: Optional[int]
    ) -> int:
        """Reference/packed replay loop; returns the records consumed.

        Every per-record attribute chain is hoisted into a local so the
        loop body is dict-free.  This loop plus the machine's access
        fast path dominate sweep wall-clock time.
        """
        work_per_access = self.config.core.cpu_work_per_access_ns
        core_count = self.config.core_count
        clocks = [node.clock for node in self.machine.nodes]
        perform_access = self.machine.perform_access
        write_type = AccessType.WRITE
        instruction_type = AccessType.INSTRUCTION
        remaining = float("inf") if max_accesses is None else max_accesses
        count = 0
        for record in accesses:
            if count >= remaining:
                break
            core = record.core
            if core >= core_count:
                raise SimulationError(
                    f"trace references core {core} but the machine has "
                    f"{core_count} cores"
                )
            clock = clocks[core]
            clock.instructions += 1
            clock.now_ns += work_per_access
            access_type = record.access_type
            latency = perform_access(
                core,
                record.process_id,
                record.vaddr,
                access_type is write_type,
                access_type is instruction_type,
            )
            clock.now_ns += latency
            clock.stall_ns += latency
            count += 1
        return count

    def _replay_chunks(self, accesses, max_accesses: Optional[int]) -> int:
        """Chunk-aware replay for the batched engine.

        *accesses* may be a plain record stream (packed into chunks on
        the fly) or an already-chunked source — the workload chunk
        emitters and the blocked trace decoder yield
        :class:`~repro.system.batchcore.AccessChunk` blocks directly, so
        no per-record Python work happens inside the timed replay.  A
        ``max_accesses`` cap is honoured mid-chunk by truncation.
        """
        from repro.system.batchcore import iter_chunks

        machine = self.machine
        work_per_access = self.config.core.cpu_work_per_access_ns
        count = 0
        for chunk in iter_chunks(accesses, machine.chunk_records):
            remaining = None if max_accesses is None else max_accesses - count
            if remaining is not None and remaining <= 0:
                break
            count += machine.perform_chunk(
                chunk, work_per_access, limit=remaining
            )
        return count

    # ------------------------------------------------------------------
    # Checkpointed replay
    # ------------------------------------------------------------------
    def _replay_checkpointed(
        self,
        accesses,
        max_accesses: Optional[int],
        every: int,
        directory: Optional[Union[str, Path]],
        start: int,
    ) -> int:
        if every <= 0:
            raise SimulationError("checkpoint_every must be positive")
        if directory is None:
            raise SimulationError("checkpoint_every requires checkpoint_dir")
        if start < 0 or start % every != 0:
            raise SimulationError(
                "checkpoint_start must be a non-negative multiple of "
                "checkpoint_every (resume only from epoch boundaries)"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if self.engine == "batched":
            return self._replay_chunks_checkpointed(
                accesses, max_accesses, every, directory, start
            )
        return self._replay_records_checkpointed(
            accesses, max_accesses, every, directory, start
        )

    def _write_checkpoint(self, directory: Path, epoch: int) -> Path:
        # Chaos hook for crash-at-epoch-N injections, then a durable
        # write: checkpoints are the resume substrate, so they must
        # survive power loss, not just process death.
        faults.fire("sim.epoch", key=f"#{epoch}")
        return atomic_write_bytes(
            directory / checkpoint_file_name(epoch),
            self.machine.checkpoint(),
            fsync=True,
        )

    def _replay_records_checkpointed(
        self, accesses, max_accesses, every, directory, start
    ) -> int:
        iterator = iter(accesses)
        total = 0
        while True:
            take = (
                every
                if max_accesses is None
                else min(every, max_accesses - total)
            )
            if take <= 0:
                break
            count = self._replay_records(islice(iterator, take), None)
            total += count
            if count == every:
                self._write_checkpoint(directory, (start + total) // every)
            if count < take:
                break
        return total

    def _replay_chunks_checkpointed(
        self, accesses, max_accesses, every, directory, start
    ) -> int:
        from repro.system.batchcore import iter_chunks

        machine = self.machine
        work_per_access = self.config.core.cpu_work_per_access_ns
        total = 0
        for chunk in iter_chunks(accesses, machine.chunk_records):
            size = len(chunk)
            position = 0
            while position < size:
                take = min(size - position, every - (total % every))
                if max_accesses is not None:
                    take = min(take, max_accesses - total)
                    if take <= 0:
                        return total
                sub = (
                    chunk
                    if position == 0 and take == size
                    else chunk.sliced(position, position + take)
                )
                total += machine.perform_chunk(
                    sub, work_per_access, limit=take
                )
                position += take
                if total % every == 0:
                    self._write_checkpoint(directory, (start + total) // every)
            if max_accesses is not None and total >= max_accesses:
                break
        return total


def simulate(
    config: SystemConfig,
    accesses: Iterable[AccessRecord],
    workload_name: str = "",
    max_accesses: Optional[int] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it once."""
    return Simulator(config, engine=engine).run(
        accesses, workload_name=workload_name, max_accesses=max_accesses
    )
