"""Discrete event queue.

The headline simulator is trace-driven and advances per-core clocks
directly, but several auxiliary pieces — the thread-migration stress test,
the detailed NoC ablation and a number of unit tests — need a conventional
discrete-event scheduler.  :class:`EventQueue` provides a deterministic
one: events at equal timestamps are delivered in insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time_ns: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`, usable to cancel."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def time_ns(self) -> float:
        """Scheduled firing time."""
        return self._event.time_ns

    @property
    def label(self) -> str:
        """Human-readable label attached at scheduling time."""
        return self._event.label


class EventQueue:
    """A deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now_ns = 0.0
        self.fired_events = 0

    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """Current simulated time."""
        return self._now_ns

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._heap)

    def schedule(
        self, delay_ns: float, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise SimulationError("cannot schedule an event in the past")
        event = _ScheduledEvent(
            time_ns=self._now_ns + delay_ns,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(
        self, time_ns: float, callback: Callable[[], Any], label: str = ""
    ) -> EventHandle:
        """Schedule *callback* at an absolute simulated time."""
        if time_ns < self._now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns} ns; current time is {self._now_ns} ns"
            )
        return self.schedule(time_ns - self._now_ns, callback, label)

    # ------------------------------------------------------------------
    def step(self) -> Optional[Tuple[float, str]]:
        """Fire the next non-cancelled event; return ``(time, label)``.

        Returns ``None`` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now_ns = event.time_ns
            event.callback()
            self.fired_events += 1
            return (event.time_ns, event.label)
        return None

    def run(self, until_ns: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains, *until_ns*, or *max_events*.

        Returns the number of events fired by this call.
        """
        fired = 0
        while self._heap and fired < max_events:
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until_ns is not None and next_event.time_ns > until_ns:
                break
            if self.step() is not None:
                fired += 1
        if fired >= max_events:
            raise SimulationError(
                f"event limit of {max_events} reached; possible event livelock"
            )
        return fired
