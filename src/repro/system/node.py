"""A single node of the machine: core, caches, directory, memory.

Figure 1 of the paper shows the node composition: a CPU with its private
caches, a router on the mesh, and a memory controller with an attached
probe filter (sparse directory) and DRAM.  :class:`Node` bundles these
components; the :class:`~repro.system.machine.Machine` wires sixteen of
them onto the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import CacheHierarchy
from repro.core.directory import DirectoryController
from repro.core.probe_filter import ProbeFilter
from repro.memory.controller import MemoryController
from repro.memory.dram import Dram


@dataclass(slots=True)
class CoreClock:
    """Per-core simulated time and instruction accounting.

    Slotted because the replay loop touches four of its fields per
    simulated access; slot descriptors are measurably cheaper than
    ``__dict__`` stores at that call rate.
    """

    now_ns: float = 0.0
    instructions: int = 0
    memory_accesses: int = 0
    stall_ns: float = 0.0

    def advance(self, delta_ns: float) -> None:
        """Move this core's local time forward by *delta_ns*."""
        self.now_ns += delta_ns

    def stall(self, delta_ns: float) -> None:
        """Advance time attributing the delay to memory stalls."""
        self.now_ns += delta_ns
        self.stall_ns += delta_ns


@dataclass
class Node:
    """One affinity domain: core + caches + directory + memory."""

    node_id: int
    caches: CacheHierarchy
    probe_filter: ProbeFilter
    dram: Dram
    memory_controller: MemoryController
    directory: DirectoryController
    clock: CoreClock = field(default_factory=CoreClock)

    @property
    def core_id(self) -> int:
        """The core hosted on this node (one core per node in the paper)."""
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, policy={self.directory.policy.name})"
