"""Machine builder: wires nodes, network and the OS model together.

:class:`Machine` owns every structural component of the simulated system
(nodes, mesh network, NUMA allocator, message sizing) and provides the
access-servicing entry points the trace-driven simulator drives.  It is
deliberately independent of any particular workload: the simulator feeds
it one memory access at a time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy, EvictedLine
from repro.coherence.messages import MessageFactory, MessageSizing
from repro.coherence.transactions import RequestKind, Transaction
from repro.core.directory import DirectoryController, DirectoryTimings
from repro.core.policy import AllarmPolicy, AllocationPolicy, BaselinePolicy
from repro.core.probe_filter import ProbeFilter
from repro.errors import ConfigurationError
from repro.memory.controller import MemoryController
from repro.memory.dram import Dram
from repro.noc.network import Network
from repro.noc.topology import MeshTopology
from repro.numa.allocator import NumaAllocator
from repro.system.config import SystemConfig
from repro.system.node import Node


class Machine:
    """The full simulated system of Table I.

    Parameters
    ----------
    config:
        System description; see :class:`repro.system.config.SystemConfig`.
    """

    #: Cache-hierarchy and probe-filter implementations each node is built
    #: with.  The packed engine (:class:`repro.system.fastcore.PackedMachine`)
    #: swaps in the array-backed hierarchy and sparse directory here;
    #: everything else — directory controller, network, NUMA, memory — is
    #: shared between the engines.
    hierarchy_class = CacheHierarchy
    probe_filter_class = ProbeFilter

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.address_map = config.address_map()
        self.sizing = MessageSizing(
            control_bytes=config.network.control_message_bytes,
            data_bytes=config.network.data_message_bytes,
            flit_bytes=config.network.flit_bytes,
        )
        self.message_factory = MessageFactory(self.sizing)
        self.network = Network(
            topology=MeshTopology(config.network.mesh_width, config.network.mesh_height),
            routing=config.network.routing,
            link_bandwidth_bytes_per_ns=config.network.link_bandwidth_bytes_per_ns,
            link_latency_ns=config.network.link_latency_ns,
            flit_bytes=config.network.flit_bytes,
            router_latency_ns=config.network.router_latency_ns,
        )
        self.allocator = NumaAllocator(
            self.address_map,
            policy=config.os.placement_policy,
            frames_per_node=config.os.frames_per_node,
        )
        self.nodes: List[Node] = [
            self._build_node(node_id) for node_id in range(config.node_count)
        ]
        self.transactions_serviced = 0
        # Hot-path bindings: perform_access runs once per simulated memory
        # reference (millions per sweep run), so the constants and bound
        # methods it needs are hoisted here instead of being re-resolved
        # through the config object on every access.
        self._translate = self.allocator.translate
        self._line_mask = ~(config.line_size - 1)
        self._bytes_per_node = self.address_map.bytes_per_node
        self._cache_latency = config.core.cache_access_latency_ns

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_node(self, node_id: int) -> Node:
        cfg = self.config
        caches = self.hierarchy_class(
            core_id=node_id,
            l1i_size=cfg.core.l1i_size,
            l1d_size=cfg.core.l1d_size,
            l1_assoc=cfg.core.l1_associativity,
            l2_size=cfg.core.l2_size,
            l2_assoc=cfg.core.l2_associativity,
            line_size=cfg.line_size,
            replacement=cfg.core.replacement,
            mshr_capacity=cfg.core.mshr_capacity,
        )
        probe_filter = self.probe_filter_class(
            node_id=node_id,
            coverage_bytes=cfg.directory.probe_filter_coverage,
            associativity=cfg.directory.probe_filter_associativity,
            line_size=cfg.line_size,
            replacement=cfg.directory.probe_filter_replacement,
        )
        dram = Dram(
            node_id=node_id,
            access_latency_ns=cfg.directory.dram_latency_ns,
            row_hit_latency_ns=cfg.directory.dram_row_hit_latency_ns,
            line_size=cfg.line_size,
        )
        memory_controller = MemoryController(node_id, dram)
        timings = DirectoryTimings(
            directory_access_ns=cfg.directory.directory_access_latency_ns,
            cache_access_ns=cfg.core.cache_access_latency_ns,
            on_die_link_ns=cfg.directory.on_die_link_ns,
        )
        directory = DirectoryController(
            node_id=node_id,
            probe_filter=probe_filter,
            memory_controller=memory_controller,
            network=self.network,
            cache_lookup=self.cache_of,
            policy=self._build_policy(node_id),
            message_factory=self.message_factory,
            timings=timings,
        )
        return Node(
            node_id=node_id,
            caches=caches,
            probe_filter=probe_filter,
            dram=dram,
            memory_controller=memory_controller,
            directory=directory,
        )

    def _build_policy(self, node_id: int) -> AllocationPolicy:
        if not self.config.uses_allarm:
            return BaselinePolicy()
        enabled = node_id not in self.config.allarm_disabled_nodes
        return AllarmPolicy(
            active_ranges=self.config.allarm_ranges, enabled=enabled
        )

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Return node *node_id*."""
        if node_id < 0 or node_id >= len(self.nodes):
            raise ConfigurationError(f"node {node_id} out of range")
        return self.nodes[node_id]

    def cache_of(self, node_id: int) -> CacheHierarchy:
        """Return the cache hierarchy of *node_id* (directory callback)."""
        return self.node(node_id).caches

    def directory_of(self, node_id: int) -> DirectoryController:
        """Return the directory controller of *node_id*."""
        return self.node(node_id).directory

    def home_directory(self, paddr: int) -> DirectoryController:
        """Return the directory responsible for physical address *paddr*."""
        return self.directory_of(self.address_map.home_node(paddr))

    # ------------------------------------------------------------------
    # Access servicing
    # ------------------------------------------------------------------
    def perform_access(
        self,
        core: int,
        process_id: int,
        vaddr: int,
        is_write: bool,
        is_instruction: bool = False,
    ) -> float:
        """Execute one memory access on *core*; return its latency in ns.

        The access is translated (allocating its page on first touch),
        looked up in the core's cache hierarchy, and on an L2 miss or
        upgrade a coherence transaction is issued to the home directory.
        Cache fills and any resulting L2 evictions (with their directory
        notifications) are applied before returning.

        This method is the simulator's innermost loop: the body up to the
        hit return touches only locals and pre-bound attributes, and the
        coherence machinery lives behind :meth:`_service_miss` so that the
        hit-dominated common case pays none of its setup cost.
        """
        nodes = self.nodes
        if core < 0 or core >= len(nodes):
            raise ConfigurationError(
                f"core {core} out of range for a {len(nodes)}-core machine"
            )
        node = nodes[core]
        paddr = self._translate(process_id, core, vaddr)
        line_paddr = paddr & self._line_mask

        result = node.caches.access(line_paddr, is_write, is_instruction)
        node.clock.memory_accesses += 1
        if not result.needs_coherence:
            return self._cache_latency
        return self._service_miss(
            node, core, line_paddr, is_write, is_instruction, result.needs_upgrade
        )

    def _service_miss(
        self,
        node: Node,
        core: int,
        line_paddr: int,
        is_write: bool,
        is_instruction: bool,
        needs_upgrade: bool,
    ) -> float:
        """Coherence slow path: directory transaction, fill and evictions.

        The miss occupies an MSHR slot for its (atomic) duration; a line
        pre-registered as in flight (e.g. by a bursty trace-replay
        harness) merges into the existing entry, and completion retires
        the whole entry — the packed fast path mirrors this exactly.
        """
        kind = RequestKind.WRITE if is_write else RequestKind.READ
        mshrs = node.caches.mshrs
        mshrs.allocate(line_paddr, kind)
        home = self.nodes[line_paddr // self._bytes_per_node].directory
        outcome = home.service_request(core, line_paddr, kind)
        self.transactions_serviced += 1

        if needs_upgrade:
            # The line is already resident; only its state changes.
            node.caches.l2.set_state(line_paddr, outcome.fill_state)
            for l1 in (node.caches.l1i, node.caches.l1d):
                if l1.contains(line_paddr):
                    l1.set_state(line_paddr, outcome.fill_state)
        else:
            evicted = node.caches.fill(
                line_paddr, outcome.fill_state, is_instruction
            )
            if evicted:
                self._handle_evictions(core, evicted)

        mshrs.release(line_paddr)
        return self._cache_latency + outcome.transaction.latency_ns

    def _handle_evictions(self, core: int, evicted: List[EvictedLine]) -> None:
        mode = self.config.directory.eviction_notification
        for victim in evicted:
            home = self.home_directory(victim.line_address)
            if mode == "owned":
                notify = victim.owned or victim.dirty
            elif mode == "dirty":
                notify = victim.dirty
            else:
                notify = False
            if notify:
                home.handle_cache_eviction(core, victim.line_address, victim.state)
            elif victim.dirty:
                # Even without a directory notification, dirty data must
                # reach memory.
                home.memory_controller.writeback_line(victim.line_address)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> bytes:
        """Serialize this machine's full mutable state to a blob.

        The blob is versioned and digest-stamped; restoring it onto a
        freshly built machine of the same configuration and engine via
        :meth:`restore` continues the run bit-identically (the
        ``snapshot_diff == []`` contract).  See
        :mod:`repro.system.checkpoint` for the state inventory.
        """
        from repro.system.checkpoint import checkpoint_machine

        return checkpoint_machine(self)

    def restore(self, blob: bytes) -> None:
        """Restore a :meth:`checkpoint` blob onto this machine, in place."""
        from repro.system.checkpoint import restore_machine

        restore_machine(self, blob)

    # ------------------------------------------------------------------
    # Aggregate queries used by the statistics layer
    # ------------------------------------------------------------------
    def total_probe_filter_evictions(self) -> int:
        """Sum of probe-filter evictions across all directories (Fig. 3b)."""
        return sum(n.probe_filter.stats.evictions for n in self.nodes)

    def total_l2_misses(self) -> int:
        """Sum of L2 misses across all cores (Fig. 3e)."""
        return sum(n.caches.l2.stats.misses for n in self.nodes)

    def execution_time_ns(self) -> float:
        """Parallel execution time: the slowest core's clock."""
        return max((n.clock.now_ns for n in self.nodes), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(nodes={len(self.nodes)}, policy={self.config.directory_policy})"
        )
