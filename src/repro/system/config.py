"""System configuration (Table I of the paper) and validation.

:class:`SystemConfig` gathers every parameter of the simulated machine.
The default values reproduce Table I exactly: 16 cores at 2 GHz in a 4x4
mesh, 64-byte lines, 32 kB 4-way L1 caches, a 256 kB 4-way private L2, a
probe filter covering 512 kB of cached data (2x L2 coverage), 2 GB of DRAM
at 60 ns, 4-byte flits, 8/72-byte control/data messages, 8 GB/s links with
10 ns latency, and a NUMA-enabled OS using first-touch allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.policy import PhysicalRange
from repro.errors import ConfigurationError
from repro.memory.address import AddressMap


@dataclass(frozen=True)
class CoreConfig:
    """Core and per-core cache parameters."""

    frequency_ghz: float = 2.0
    cache_access_latency_ns: float = 1.0
    l1i_size: int = 32 * 1024
    l1d_size: int = 32 * 1024
    l1_associativity: int = 4
    l2_size: int = 256 * 1024
    l2_associativity: int = 4
    mshr_capacity: int = 16
    replacement: str = "lru"
    #: Nanoseconds of non-memory work charged per instruction between
    #: memory references (models a CPI-1 pipeline at 2 GHz).
    cpu_work_per_access_ns: float = 0.5


@dataclass(frozen=True)
class DirectoryConfig:
    """Sparse directory (probe filter) and DRAM parameters.

    ``eviction_notification`` controls which cache evictions inform the
    home directory so its entry can be reclaimed:

    * ``"dirty"`` (default) — only writebacks (M/O lines) reach the
      directory; clean lines are dropped silently, leaving their entries
      behind until the probe filter itself evicts them.  This is how
      deployed Hammer probe filters behave and is the regime in which the
      paper's eviction pressure arises.
    * ``"owned"`` — additionally notify on clean-exclusive (E) evictions,
      the stronger reading of the paper's "already optimized baseline";
      available as an ablation (see DESIGN.md §6).
    * ``"none"`` — never notify; dirty data is still written back.
    """

    probe_filter_coverage: int = 512 * 1024
    probe_filter_associativity: int = 4
    probe_filter_replacement: str = "lru"
    directory_access_latency_ns: float = 1.0
    dram_latency_ns: float = 60.0
    dram_row_hit_latency_ns: float = 40.0
    memory_bytes: int = 2 * 1024 * 1024 * 1024
    on_die_link_ns: float = 2.0
    eviction_notification: str = "dirty"

    def __post_init__(self) -> None:
        if self.eviction_notification not in ("none", "dirty", "owned"):
            raise ConfigurationError(
                f"unknown eviction_notification {self.eviction_notification!r}"
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Mesh interconnect parameters."""

    mesh_width: int = 4
    mesh_height: int = 4
    flit_bytes: int = 4
    control_message_bytes: int = 8
    data_message_bytes: int = 72
    link_bandwidth_gbps: float = 8.0
    link_latency_ns: float = 10.0
    router_latency_ns: float = 1.5
    routing: str = "xy"

    @property
    def link_bandwidth_bytes_per_ns(self) -> float:
        """Link bandwidth converted to bytes per nanosecond."""
        return self.link_bandwidth_gbps


@dataclass(frozen=True)
class OsConfig:
    """Operating-system model parameters (NUMA allocation)."""

    placement_policy: str = "first-touch"
    page_size: int = 4096
    frames_per_node: Optional[int] = None


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of the simulated machine.

    ``directory_policy`` selects the paper's contribution: ``"baseline"``
    allocates a probe-filter entry on every miss, ``"allarm"`` only on a
    remote miss.  ``allarm_ranges`` optionally restricts ALLARM to
    physical ranges (Section II-C), and ``allarm_disabled_nodes`` turns
    ALLARM off for individual directories (Section III-A.1).
    """

    core_count: int = 16
    line_size: int = 64
    core: CoreConfig = field(default_factory=CoreConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    os: OsConfig = field(default_factory=OsConfig)
    directory_policy: str = "baseline"
    allarm_ranges: Optional[Tuple[PhysicalRange, ...]] = None
    allarm_disabled_nodes: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        mesh_nodes = self.network.mesh_width * self.network.mesh_height
        if self.core_count != mesh_nodes:
            raise ConfigurationError(
                f"core_count ({self.core_count}) must equal the number of "
                f"mesh nodes ({mesh_nodes}); the paper uses one core per node"
            )
        if self.directory_policy not in ("baseline", "allarm"):
            raise ConfigurationError(
                f"unknown directory policy {self.directory_policy!r}"
            )
        if self.directory.memory_bytes % self.core_count != 0:
            raise ConfigurationError("memory must divide evenly across nodes")
        for node in self.allarm_disabled_nodes:
            if node < 0 or node >= self.core_count:
                raise ConfigurationError(f"disabled node {node} out of range")

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of nodes (one directory / memory controller per core)."""
        return self.core_count

    @property
    def uses_allarm(self) -> bool:
        """True when the machine runs the ALLARM allocation policy."""
        return self.directory_policy == "allarm"

    def address_map(self) -> AddressMap:
        """Build the physical address map implied by this configuration."""
        return AddressMap(
            line_size=self.line_size,
            page_size=self.os.page_size,
            node_count=self.node_count,
            memory_bytes=self.directory.memory_bytes,
        )

    # ------------------------------------------------------------------
    def with_policy(self, policy: str) -> "SystemConfig":
        """Return a copy of this configuration with a different policy."""
        return replace(self, directory_policy=policy)

    def with_probe_filter_coverage(self, coverage_bytes: int) -> "SystemConfig":
        """Return a copy with a different probe-filter size (Fig. 3h / 4)."""
        return replace(
            self, directory=replace(self.directory, probe_filter_coverage=coverage_bytes)
        )

    def with_frames_per_node(self, frames: Optional[int]) -> "SystemConfig":
        """Return a copy with a cap on usable page frames per node."""
        return replace(self, os=replace(self.os, frames_per_node=frames))

    def with_placement_policy(self, policy: str) -> "SystemConfig":
        """Return a copy with a different NUMA placement policy."""
        return replace(self, os=replace(self.os, placement_policy=policy))

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, str]:
        """Return Table I as a dictionary of human-readable rows."""
        return {
            "Cores": f"{self.core_count}",
            "Frequency": f"{self.core.frequency_ghz} GHz",
            "Block size": f"{self.line_size} bytes",
            "Cache access latency": f"{self.core.cache_access_latency_ns} ns",
            "ICache": f"{self.core.l1i_size // 1024} kB, {self.core.l1_associativity}-way",
            "DCache": f"{self.core.l1d_size // 1024} kB, {self.core.l1_associativity}-way",
            "L2 Cache": f"{self.core.l2_size // 1024} kB, {self.core.l2_associativity}-way",
            "Directory": (
                f"tracks {self.directory.probe_filter_coverage // 1024} kB of cached data, "
                f"{self.directory.directory_access_latency_ns} ns access latency"
            ),
            "Memory": (
                f"{self.directory.memory_bytes // (1024 ** 3)} GB, "
                f"{self.directory.dram_latency_ns} ns access latency"
            ),
            "OS": f"NUMA enabled, {self.os.placement_policy} allocation",
            "Topology": f"{self.network.mesh_width}x{self.network.mesh_height} mesh",
            "Flit size": f"{self.network.flit_bytes} bytes",
            "Control message": f"{self.network.control_message_bytes} bytes",
            "Data message": f"{self.network.data_message_bytes} bytes",
            "Link bandwidth": f"{self.network.link_bandwidth_gbps} GB/s",
            "Link latency": f"{self.network.link_latency_ns} ns",
            "Directory policy": self.directory_policy,
        }


def paper_config(policy: str = "baseline", **overrides) -> SystemConfig:
    """Return the paper's Table I configuration with the given policy.

    Keyword overrides are applied with :func:`dataclasses.replace`, e.g.
    ``paper_config("allarm", core_count=16)``.
    """
    config = SystemConfig(directory_policy=policy)
    if overrides:
        config = replace(config, **overrides)
    return config


def scaled_config(
    policy: str = "baseline",
    probe_filter_coverage: int = 512 * 1024,
    frames_per_node: Optional[int] = None,
    placement_policy: str = "first-touch",
) -> SystemConfig:
    """Convenience builder used by the experiment harness.

    Produces the paper configuration with the probe-filter coverage,
    memory pressure and NUMA placement settings the individual figures
    sweep over.
    """
    config = paper_config(policy)
    config = config.with_probe_filter_coverage(probe_filter_coverage)
    config = config.with_frames_per_node(frames_per_node)
    config = config.with_placement_policy(placement_policy)
    return config


#: Default down-scaling factor used by the experiment harness.  Simulation
#: time forces the paper to use reduced input sets with proportionally
#: scaled caches (Section III, citing Kim et al. and Cuesta et al.); we do
#: the same, shrinking caches, probe filters and workload footprints by a
#: common factor so that every capacity ratio of Table I is preserved.
DEFAULT_EXPERIMENT_SCALE = 8


def experiment_config(
    policy: str = "baseline",
    scale: int = DEFAULT_EXPERIMENT_SCALE,
    nominal_probe_filter_coverage: int = 512 * 1024,
    frames_per_node: Optional[int] = None,
    placement_policy: str = "first-touch",
    allarm_disabled_nodes: Tuple[int, ...] = (),
) -> SystemConfig:
    """Paper configuration with caches and probe filter scaled down by *scale*.

    ``nominal_probe_filter_coverage`` is expressed in the paper's units
    (512 kB, 256 kB, ... as in Figures 3h and 4); the actual simulated
    coverage is the nominal value divided by *scale*.  Cache capacities
    scale identically, so the probe filter keeps its 2x L2 coverage and
    every experiment sweeps the same *relative* sizes the paper does.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    base = SystemConfig()
    core = replace(
        base.core,
        l1i_size=max(4 * 1024, base.core.l1i_size // scale),
        l1d_size=max(4 * 1024, base.core.l1d_size // scale),
        l2_size=max(8 * 1024, base.core.l2_size // scale),
    )
    directory = replace(
        base.directory,
        probe_filter_coverage=max(4 * 1024, nominal_probe_filter_coverage // scale),
    )
    os_config = replace(
        base.os,
        frames_per_node=frames_per_node,
        placement_policy=placement_policy,
    )
    return SystemConfig(
        core=core,
        directory=directory,
        os=os_config,
        directory_policy=policy,
        allarm_disabled_nodes=allarm_disabled_nodes,
    )
