"""Versioned, digest-stamped checkpoints of live machine state.

A checkpoint captures *everything* a machine mutates while replaying
accesses — cache tags/states/LRU stamps, PLRU words, per-set RNG states,
MSHR files, probe filters, directory/DRAM/memory-controller/network
counters, core clocks, the NUMA allocator (frame pools, page tables,
next-touch marks and the translation memo), plus the engine-specific
counters — so that ``restore()`` onto a freshly built machine of the
same configuration and engine continues the run **bit-identically**: the
final :class:`~repro.stats.snapshot.MachineSnapshot` of a
checkpoint/restore run must satisfy
``stats.compare.snapshot_diff(expected, actual) == []`` against an
uninterrupted run.  That contract is what makes resumable long runs and
sharded epoch replay (:mod:`repro.analysis.shard`) safe.

Two serialization paths share one walker:

* the packed engines expose ``state_dict()``/``load_state_dict()`` on
  their flat-array components (:class:`~repro.cache.packed.PackedCache`,
  :class:`~repro.cache.packed.PackedHierarchy`,
  :class:`~repro.core.packed_directory.PackedProbeFilter`) — restore is
  equal-length slice assignment into the existing buffers, so zero-copy
  numpy views bound by the batched engine stay attached;
* the reference :class:`~repro.system.machine.Machine` takes a slower
  dict-based path (per-set line dicts, replacement-policy internals,
  per-router/per-link fabric counters), so cross-engine checks can
  checkpoint too.

Wire format: 8-byte magic, little-endian ``u32`` version, 32-byte
SHA-256 of the payload, pickled state payload.  Decoding verifies all
three and raises :class:`~repro.errors.SimulationError` with an
actionable message on mismatch — a torn or corrupt checkpoint file must
never silently restore garbage.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import fields
from typing import Dict, List

from repro.cache.cache import CacheLine
from repro.cache.replacement import LruPolicy, RandomPolicy, TreePlruPolicy
from repro.coherence.states import LineState
from repro.core.probe_filter import ProbeFilterEntry
from repro.errors import SimulationError
from repro.numa.page_table import PageMapping

#: Magic prefix of every checkpoint blob.
CHECKPOINT_MAGIC = b"\x89RCKP\r\n\x1a"

#: Version of the checkpoint state layout.  Bump on any change to the
#: walker's dict shape; decode rejects mismatched versions.
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<I")
_DIGEST_BYTES = 32


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
def encode_checkpoint(state: Dict[str, object]) -> bytes:
    """Wrap a state dict in the versioned, digest-stamped envelope."""
    payload = pickle.dumps(state, protocol=4)
    digest = hashlib.sha256(payload).digest()
    return CHECKPOINT_MAGIC + _HEADER.pack(CHECKPOINT_VERSION) + digest + payload


def verify_checkpoint(blob: bytes) -> bytes:
    """Validate the envelope of a checkpoint blob, returning its payload.

    Checks length, magic, version and the SHA-256 digest — everything
    short of unpickling — and raises :class:`SimulationError` on damage.
    This is what lets checkpoint *discovery* (``shard.latest_checkpoint``)
    quarantine torn files without paying for, or trusting, a pickle load.
    """
    header_len = len(CHECKPOINT_MAGIC) + _HEADER.size + _DIGEST_BYTES
    if len(blob) < header_len:
        raise SimulationError(
            f"checkpoint blob is {len(blob)} bytes, shorter than the "
            f"{header_len}-byte header; the file is truncated or not a "
            f"checkpoint"
        )
    if blob[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise SimulationError(
            "bad checkpoint magic; the file is not a repro checkpoint"
        )
    (version,) = _HEADER.unpack_from(blob, len(CHECKPOINT_MAGIC))
    if version != CHECKPOINT_VERSION:
        raise SimulationError(
            f"checkpoint version {version} is not supported "
            f"(this build writes version {CHECKPOINT_VERSION})"
        )
    digest_off = len(CHECKPOINT_MAGIC) + _HEADER.size
    stored = blob[digest_off : digest_off + _DIGEST_BYTES]
    payload = blob[header_len:]
    if hashlib.sha256(payload).digest() != stored:
        raise SimulationError(
            "checkpoint payload digest mismatch; the file is corrupt "
            "(torn write or bit rot) — re-record from the last good epoch"
        )
    return payload


def decode_checkpoint(blob: bytes) -> Dict[str, object]:
    """Unwrap and verify a checkpoint blob; raise on any damage."""
    return pickle.loads(verify_checkpoint(blob))


def checkpoint_file_name(epoch: int) -> str:
    """File name of the epoch-*epoch* checkpoint inside a checkpoint dir.

    Epoch *k*'s file holds the machine state after ``k *
    checkpoint_every`` accesses have been replayed.
    """
    return f"epoch-{epoch:06d}.ckpt"


def parse_checkpoint_epoch(name: str) -> int:
    """Inverse of :func:`checkpoint_file_name`; ``-1`` for other files."""
    if not name.startswith("epoch-") or not name.endswith(".ckpt"):
        return -1
    digits = name[len("epoch-") : -len(".ckpt")]
    if not digits.isdigit():
        return -1
    return int(digits)


def config_digest(config: object) -> str:
    """Short fingerprint of a machine configuration.

    Nested frozen dataclasses have deterministic ``repr``s, so hashing
    the repr catches restoring a checkpoint onto a differently
    configured machine without serializing the config itself.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Generic dataclass-stats helpers
# ----------------------------------------------------------------------
def _stats_state(obj: object) -> Dict[str, object]:
    """Copy a stats dataclass's fields (dict fields copied shallowly)."""
    out: Dict[str, object] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        out[f.name] = dict(value) if isinstance(value, dict) else value
    return out


def _load_stats_state(obj: object, state: Dict[str, object]) -> None:
    """Restore dataclass fields; dict-valued fields are updated in place.

    In-place dict updates matter: the packed directory fast path aliases
    ``NetworkStats.messages_by_type``/``bytes_by_type`` at construction,
    so rebinding them would silently detach the fast path's counters.
    """
    for name, value in state.items():
        if isinstance(value, dict):
            current = getattr(obj, name)
            current.clear()
            current.update(value)
        else:
            setattr(obj, name, value)


# ----------------------------------------------------------------------
# Reference-engine component serializers (dict-based slow path)
# ----------------------------------------------------------------------
def _policy_state(policy: object):
    if isinstance(policy, LruPolicy):
        return ("lru", list(policy._stack))
    if isinstance(policy, TreePlruPolicy):
        return ("plru", dict(policy._bits))
    if isinstance(policy, RandomPolicy):
        return ("random", policy._rng.getstate())
    raise SimulationError(
        f"cannot checkpoint unknown replacement policy {type(policy).__name__}"
    )


def _load_policy_state(policy: object, state) -> None:
    kind, payload = state
    if kind == "lru" and isinstance(policy, LruPolicy):
        policy._stack[:] = payload
    elif kind == "plru" and isinstance(policy, TreePlruPolicy):
        policy._bits.clear()
        policy._bits.update(payload)
    elif kind == "random" and isinstance(policy, RandomPolicy):
        policy._rng.setstate(payload)
    else:
        raise SimulationError(
            f"checkpoint policy kind {kind!r} does not match live policy "
            f"{type(policy).__name__}"
        )


def _reference_cache_state(cache) -> Dict[str, object]:
    return {
        "sets": [
            (
                [
                    (way, line.line_address, line.state.value)
                    for way, line in cache_set.lines.items()
                ],
                _policy_state(cache_set.policy),
            )
            for cache_set in cache._sets
        ],
        "stats": _stats_state(cache.stats),
    }


def _load_reference_cache_state(cache, state: Dict[str, object]) -> None:
    if len(state["sets"]) != len(cache._sets):
        raise SimulationError(
            f"cache {cache.name}: checkpoint does not match this geometry"
        )
    for cache_set, (lines, policy_state) in zip(cache._sets, state["sets"]):
        cache_set.lines.clear()
        for way, line_address, state_value in lines:
            cache_set.lines[way] = CacheLine(
                line_address=line_address,
                state=LineState(state_value),
                way=way,
            )
        _load_policy_state(cache_set.policy, policy_state)
    _load_stats_state(cache.stats, state["stats"])


def _reference_hierarchy_state(hierarchy) -> Dict[str, object]:
    return {
        "l1i": _reference_cache_state(hierarchy.l1i),
        "l1d": _reference_cache_state(hierarchy.l1d),
        "l2": _reference_cache_state(hierarchy.l2),
        "mshrs": hierarchy.mshrs.state_dict(),
    }


def _load_reference_hierarchy_state(hierarchy, state: Dict[str, object]) -> None:
    _load_reference_cache_state(hierarchy.l1i, state["l1i"])
    _load_reference_cache_state(hierarchy.l1d, state["l1d"])
    _load_reference_cache_state(hierarchy.l2, state["l2"])
    hierarchy.mshrs.load_state_dict(state["mshrs"])


def _reference_pf_state(pf) -> Dict[str, object]:
    return {
        "sets": [
            (
                [
                    (way, entry.line_address, entry.owner, sorted(entry.sharers))
                    for way, entry in filter_set.entries.items()
                ],
                _policy_state(filter_set.policy),
            )
            for filter_set in pf._sets
        ],
        "stats": _stats_state(pf.stats),
    }


def _load_reference_pf_state(pf, state: Dict[str, object]) -> None:
    if len(state["sets"]) != len(pf._sets):
        raise SimulationError(
            "probe filter checkpoint does not match this geometry"
        )
    for filter_set, (entries, policy_state) in zip(pf._sets, state["sets"]):
        filter_set.entries.clear()
        for way, line_address, owner, sharers in entries:
            filter_set.entries[way] = ProbeFilterEntry(
                line_address=line_address,
                owner=owner,
                sharers=set(sharers),
                way=way,
            )
        _load_policy_state(filter_set.policy, policy_state)
    _load_stats_state(pf.stats, state["stats"])


# ----------------------------------------------------------------------
# Shared component serializers
# ----------------------------------------------------------------------
def _hierarchy_state(hierarchy) -> Dict[str, object]:
    if hasattr(hierarchy, "state_dict"):
        return {"packed": True, "state": hierarchy.state_dict()}
    return {"packed": False, "state": _reference_hierarchy_state(hierarchy)}


def _load_hierarchy_state(hierarchy, state: Dict[str, object]) -> None:
    if state["packed"] != hasattr(hierarchy, "state_dict"):
        raise SimulationError(
            "checkpoint cache-hierarchy representation does not match the "
            "live engine (packed vs reference)"
        )
    if state["packed"]:
        hierarchy.load_state_dict(state["state"])
    else:
        _load_reference_hierarchy_state(hierarchy, state["state"])


def _pf_state(pf) -> Dict[str, object]:
    if hasattr(pf, "state_dict"):
        return {"packed": True, "state": pf.state_dict()}
    return {"packed": False, "state": _reference_pf_state(pf)}


def _load_pf_state(pf, state: Dict[str, object]) -> None:
    if state["packed"] != hasattr(pf, "state_dict"):
        raise SimulationError(
            "checkpoint probe-filter representation does not match the "
            "live engine (packed vs reference)"
        )
    if state["packed"]:
        pf.load_state_dict(state["state"])
    else:
        _load_reference_pf_state(pf, state["state"])


def _allocator_state(allocator) -> Dict[str, object]:
    return {
        "stats": _stats_state(allocator.stats),
        "next_touch_pending": sorted(allocator._next_touch_pending),
        "pools": {
            node: {
                "free": list(pool._free),
                "stats": _stats_state(pool.stats),
            }
            for node, pool in allocator.frames.pools.items()
        },
        "page_tables": {
            pid: {
                "stats": _stats_state(table.stats),
                "mappings": [
                    (
                        m.virtual_page,
                        m.physical_frame,
                        m.node,
                        m.first_toucher,
                        m.touches,
                        m.migrations,
                    )
                    for m in table._mappings.values()
                ],
            }
            for pid, table in allocator.page_tables.items()
        },
        "memo_keys": sorted(allocator._translation_cache.keys()),
    }


def _load_allocator_state(allocator, state: Dict[str, object]) -> None:
    _load_stats_state(allocator.stats, state["stats"])
    allocator._next_touch_pending.clear()
    allocator._next_touch_pending.update(
        tuple(key) for key in state["next_touch_pending"]
    )
    for node, pool_state in state["pools"].items():
        pool = allocator.frames.pools[node]
        pool._free[:] = pool_state["free"]
        _load_stats_state(pool.stats, pool_state["stats"])
    # Page tables are rebuilt through ``page_table()`` so the
    # translation-invalidation callback is wired to *this* allocator; a
    # pickled callback would resurrect the checkpointing machine.
    for pid in list(allocator.page_tables):
        if pid not in state["page_tables"]:
            del allocator.page_tables[pid]
    for pid, table_state in state["page_tables"].items():
        table = allocator.page_table(pid)
        table._mappings.clear()
        for (vpage, frame, node, toucher, touches, migrations) in table_state[
            "mappings"
        ]:
            table._mappings[vpage] = PageMapping(
                virtual_page=vpage,
                physical_frame=frame,
                node=node,
                first_toucher=toucher,
                touches=touches,
                migrations=migrations,
            )
        _load_stats_state(table.stats, table_state["stats"])
    # The translation memo is refilled *in place*: PackedMachine's
    # ``_translation_memo`` is the same dict object.  Entries are rebuilt
    # from the restored page tables (only keys are serialized) so the
    # memoized mapping/stats references point at live restored objects.
    memo = allocator._translation_cache
    memo.clear()
    for pid, vpage in state["memo_keys"]:
        table = allocator.page_tables[pid]
        mapping = table._mappings[vpage]
        memo[(pid, vpage)] = (
            allocator.address_map.frame_base(mapping.physical_frame),
            mapping,
            table.stats,
        )


# ----------------------------------------------------------------------
# Machine walker
# ----------------------------------------------------------------------
def machine_state(machine) -> Dict[str, object]:
    """Collect the full mutable state of *machine* as a plain dict."""
    nodes: List[Dict[str, object]] = []
    for node in machine.nodes:
        clock = node.clock
        nodes.append(
            {
                "clock": (
                    clock.now_ns,
                    clock.instructions,
                    clock.memory_accesses,
                    clock.stall_ns,
                ),
                "caches": _hierarchy_state(node.caches),
                "probe_filter": _pf_state(node.probe_filter),
                "directory_stats": _stats_state(node.directory.stats),
                "dram": {
                    "open_row": node.dram._open_row,
                    "stats": _stats_state(node.dram.stats),
                },
                "memory_controller": _stats_state(node.memory_controller.stats),
            }
        )
    state: Dict[str, object] = {
        "machine_class": type(machine).__name__,
        "config_digest": config_digest(machine.config),
        "transactions_serviced": machine.transactions_serviced,
        "nodes": nodes,
        "network": _stats_state(machine.network.stats),
        "fabric": {
            "routers": {
                node_id: _stats_state(router.stats)
                for node_id, router in machine.network.routers.items()
            },
            "links": {
                key: _stats_state(link.stats)
                for key, link in machine.network.links.items()
            },
        },
        "allocator": _allocator_state(machine.allocator),
    }
    if hasattr(machine, "fast_misses"):
        state["packed"] = {
            "fast_misses": machine.fast_misses,
            "deferred_misses": machine.deferred_misses,
            "deferred_miss_causes": dict(machine.deferred_miss_causes),
            "translation_fills": machine.translation_fills,
        }
    if hasattr(machine, "batch_chunks"):
        state["batched"] = {
            "batch_chunks": machine.batch_chunks,
            "batch_accesses": machine.batch_accesses,
            "batch_bulk_hits": machine.batch_bulk_hits,
            "batch_residue": machine.batch_residue,
            "batch_reclassifies": machine.batch_reclassifies,
            "batch_fallback_accesses": machine.batch_fallback_accesses,
        }
    return state


def load_machine_state(machine, state: Dict[str, object]) -> None:
    """Restore a :func:`machine_state` dict onto *machine*, in place."""
    if state["machine_class"] != type(machine).__name__:
        raise SimulationError(
            f"checkpoint was written by a {state['machine_class']} but is "
            f"being restored onto a {type(machine).__name__}; build the "
            f"same engine before restoring"
        )
    if state["config_digest"] != config_digest(machine.config):
        raise SimulationError(
            "checkpoint configuration digest does not match this machine; "
            "restore requires an identically configured machine"
        )
    if len(state["nodes"]) != len(machine.nodes):
        raise SimulationError(
            f"checkpoint has {len(state['nodes'])} nodes but the machine "
            f"has {len(machine.nodes)}"
        )
    machine.transactions_serviced = state["transactions_serviced"]
    for node, node_state in zip(machine.nodes, state["nodes"]):
        clock = node.clock
        (
            clock.now_ns,
            clock.instructions,
            clock.memory_accesses,
            clock.stall_ns,
        ) = node_state["clock"]
        _load_hierarchy_state(node.caches, node_state["caches"])
        _load_pf_state(node.probe_filter, node_state["probe_filter"])
        _load_stats_state(node.directory.stats, node_state["directory_stats"])
        node.dram._open_row = node_state["dram"]["open_row"]
        _load_stats_state(node.dram.stats, node_state["dram"]["stats"])
        _load_stats_state(
            node.memory_controller.stats, node_state["memory_controller"]
        )
    _load_stats_state(machine.network.stats, state["network"])
    for node_id, router_state in state["fabric"]["routers"].items():
        _load_stats_state(machine.network.routers[node_id].stats, router_state)
    for key, link_state in state["fabric"]["links"].items():
        _load_stats_state(machine.network.links[key].stats, link_state)
    _load_allocator_state(machine.allocator, state["allocator"])
    if "packed" in state:
        packed = state["packed"]
        machine.fast_misses = packed["fast_misses"]
        machine.deferred_misses = packed["deferred_misses"]
        machine.deferred_miss_causes.clear()
        machine.deferred_miss_causes.update(packed["deferred_miss_causes"])
        machine.translation_fills = packed["translation_fills"]
    if "batched" in state:
        batched = state["batched"]
        machine.batch_chunks = batched["batch_chunks"]
        machine.batch_accesses = batched["batch_accesses"]
        machine.batch_bulk_hits = batched["batch_bulk_hits"]
        machine.batch_residue = batched["batch_residue"]
        machine.batch_reclassifies = batched["batch_reclassifies"]
        machine.batch_fallback_accesses = batched["batch_fallback_accesses"]
    after = getattr(machine, "_after_restore", None)
    if after is not None:
        after()


def checkpoint_machine(machine) -> bytes:
    """Serialize *machine*'s full mutable state into a checkpoint blob."""
    return encode_checkpoint(machine_state(machine))


def restore_machine(machine, blob: bytes) -> None:
    """Restore a :func:`checkpoint_machine` blob onto *machine*."""
    load_machine_state(machine, decode_checkpoint(blob))
