"""System assembly: configuration, nodes, machine and the simulator."""

from repro.system.config import (
    CoreConfig,
    DirectoryConfig,
    NetworkConfig,
    OsConfig,
    SystemConfig,
    experiment_config,
    paper_config,
    scaled_config,
)
from repro.system.event_queue import EventQueue
from repro.system.fastcore import (
    DEFAULT_ENGINE,
    ENGINES,
    PackedMachine,
    build_machine,
    resolve_engine,
)
from repro.system.machine import Machine
from repro.system.node import CoreClock, Node
from repro.system.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "SystemConfig",
    "CoreConfig",
    "DirectoryConfig",
    "NetworkConfig",
    "OsConfig",
    "paper_config",
    "scaled_config",
    "experiment_config",
    "Machine",
    "PackedMachine",
    "build_machine",
    "resolve_engine",
    "ENGINES",
    "DEFAULT_ENGINE",
    "Node",
    "CoreClock",
    "Simulator",
    "SimulationResult",
    "simulate",
    "EventQueue",
]
