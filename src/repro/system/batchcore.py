"""Batched/columnar replay kernel: the third simulation engine.

The packed engine (:mod:`repro.system.fastcore`) removed the object-graph
walk but still pays one Python call per access, which caps hit-dominated
replay on interpreter dispatch.  :class:`BatchedMachine` consumes
accesses in *chunks* — columnar :class:`AccessChunk` blocks of parallel
``array('q')`` columns — and vectorises the overwhelmingly common case
(warm translation + L1 hit under LRU) over whole blocks with numpy,
falling back to the untouched per-access packed path for the *residue*:
misses, upgrades, cold translations, and any access whose classification
a residue access may have disturbed.

Bit-identity with the packed and reference engines remains the hard
contract (golden corpus, cross-engine differ, lock-step fuzzer).  The
kernel guarantees it by construction:

* **Classification is conservative.**  Per chunk it classifies each
  access as *bulk-committable L1 hit* or *residue*; residue accesses
  replay one-by-one through :meth:`PackedMachine.perform_access`, which
  handles every case exactly.  Wrongly classifying a hit as residue is
  always safe; the kernel never does the reverse because …
* **Hit runs are stable.**  Within a run of consecutive classified hits,
  no tag changes and no state becomes less writable: read hits only
  touch recency/stat state, write hits only raise an L2 state that is
  already writable to MODIFIED.  So a classification taken at the start
  of the run is still exact when the run commits.
* **Disturbances are tracked, not guessed.**  A residue access can
  invalidate later classifications only by (a) displacing a victim line
  — every such path increments an eviction counter (L1/L2/probe-filter),
  so a counter delta triggers reclassification of the chunk remainder —
  or (b) invalidating/downgrading copies of *the accessed line itself*,
  so that line is poisoned and later classified hits on it are demoted
  to residue (downgrades only endanger write hits; invalidations
  endanger all).  A translation fill also triggers reclassification —
  not for safety (fills are additive) but so accesses behind a cold page
  re-classify as hits once the page is warm.
* **Bulk arithmetic is exact.**  Bulk clock updates use
  ``k * (work + latency)``, which is bit-identical to ``k`` sequential
  additions only when the addends are dyadic rationals (every default
  latency is a multiple of 0.5 ns).  The kernel *verifies* dyadicity at
  runtime and runs the chunk sequentially when the check fails, so
  exotic latencies degrade to packed speed instead of to wrong floats.
  LRU stamps commit as a strictly increasing sequence with last-wins
  per slot (``np.maximum.at``), reproducing the sequential stamps and
  counter exactly.

Vectorisation requires numpy, LRU replacement and a power-of-two page
size; otherwise — and always when numpy is absent — the kernel degrades
to the pure-``array`` chunked fallback: the same chunk protocol replayed
access-by-access through the packed path, still bit-identical.  Set
``REPRO_BATCH_FORCE_FALLBACK=1`` to force that path with numpy present,
and ``REPRO_BATCH_CHUNK`` to change the default chunk size.
"""

from __future__ import annotations

import os
from array import array
from itertools import islice
from typing import Iterable, Iterator, List, Optional, Union

try:  # numpy is an optional extra (``pip install repro[fast]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_BATCH_FORCE_FALLBACK
    _np = None

from repro.cache.packed import CODE_CAN_WRITE, STATE_MODIFIED
from repro.errors import ConfigurationError, SimulationError
from repro.system.config import SystemConfig
from repro.system.fastcore import PackedMachine
from repro.trace.record import AccessRecord, AccessType

#: Columnar access-type codes (the ``types`` column of an AccessChunk).
TYPE_READ = 0
TYPE_WRITE = 1
TYPE_INSTRUCTION = 2

_TYPE_CODES = {
    AccessType.READ: TYPE_READ,
    AccessType.WRITE: TYPE_WRITE,
    AccessType.INSTRUCTION: TYPE_INSTRUCTION,
}
_CODE_TYPES = (AccessType.READ, AccessType.WRITE, AccessType.INSTRUCTION)

#: Default records per chunk (``REPRO_BATCH_CHUNK`` overrides).
DEFAULT_CHUNK_RECORDS = 8192

#: Reclassifications tolerated per chunk before the kernel bails to
#: sequential replay for the chunk remainder (``REPRO_BATCH_RECLASS_LIMIT``
#: overrides).  Bounds the vector overhead on miss-heavy chunks.
DEFAULT_RECLASS_LIMIT = 10

#: Translation hash-table size (power of two).
_TBL = 1 << 12
#: Bits reserved for the virtual page in a packed (pid, vpage) key.
_VPAGE_BITS = 45
#: Dyadic precision for the bulk-clock exactness check: a latency is
#: bulk-safe when it is an integer multiple of 2**-12 ns.
_DYADIC_SCALE = 1 << 12


def _is_dyadic(value: float) -> bool:
    """True when *value* is an exact multiple of ``2**-12`` nanoseconds."""
    scaled = value * _DYADIC_SCALE
    return scaled == int(scaled)


class AccessChunk:
    """A block of accesses as parallel columns (struct-of-arrays).

    Columns are ``array('q')`` so the pure-Python fallback indexes them
    directly and the vector kernel views them zero-copy via
    ``np.frombuffer``.  ``types`` holds the ``TYPE_*`` codes.
    """

    __slots__ = ("cores", "vaddrs", "types", "pids")

    def __init__(
        self,
        cores: Optional[array] = None,
        vaddrs: Optional[array] = None,
        types: Optional[array] = None,
        pids: Optional[array] = None,
    ) -> None:
        self.cores = cores if cores is not None else array("q")
        self.vaddrs = vaddrs if vaddrs is not None else array("q")
        self.types = types if types is not None else array("q")
        self.pids = pids if pids is not None else array("q")

    def __len__(self) -> int:
        return len(self.cores)

    def append(self, core: int, vaddr: int, type_code: int, process_id: int) -> None:
        """Append one access given raw column values."""
        self.cores.append(core)
        self.vaddrs.append(vaddr)
        self.types.append(type_code)
        self.pids.append(process_id)

    def append_record(self, record: AccessRecord) -> None:
        """Append one :class:`AccessRecord`."""
        self.cores.append(record.core)
        self.vaddrs.append(record.vaddr)
        self.types.append(_TYPE_CODES[record.access_type])
        self.pids.append(record.process_id)

    def truncated(self, count: int) -> "AccessChunk":
        """Return a copy holding only the first *count* accesses."""
        return AccessChunk(
            self.cores[:count],
            self.vaddrs[:count],
            self.types[:count],
            self.pids[:count],
        )

    def sliced(self, start: int, stop: int) -> "AccessChunk":
        """Return a copy holding accesses ``[start, stop)``.

        Used by the checkpointed replay loop to split a chunk exactly at
        an epoch boundary; chunk boundaries never affect simulated state,
        so splitting is bit-transparent.
        """
        return AccessChunk(
            self.cores[start:stop],
            self.vaddrs[start:stop],
            self.types[start:stop],
            self.pids[start:stop],
        )

    def records(self) -> Iterator[AccessRecord]:
        """Materialise the chunk back into :class:`AccessRecord` tuples."""
        types = self.types
        for i in range(len(self.cores)):
            yield AccessRecord(
                core=self.cores[i],
                vaddr=self.vaddrs[i],
                access_type=_CODE_TYPES[types[i]],
                process_id=self.pids[i],
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AccessChunk({len(self)} accesses)"


ChunkSource = Union[Iterable[AccessRecord], Iterable[AccessChunk]]


def chunk_records(
    records: Iterable[AccessRecord], chunk_size: int = DEFAULT_CHUNK_RECORDS
) -> Iterator[AccessChunk]:
    """Pack an access-record stream into :class:`AccessChunk` blocks.

    Packing is columnar: each block of records is transposed with
    ``zip(*block)`` and each column built by the ``array`` constructor,
    so the per-record Python cost is one tuple unpack at C speed rather
    than four method calls.
    """
    codes = _TYPE_CODES
    read = AccessType.READ
    iterator = iter(records)
    while True:
        block = list(islice(iterator, chunk_size))
        if not block:
            return
        yield AccessChunk(
            array("q", [r[0] for r in block]),
            array("q", [r[1] for r in block]),
            array(
                "q",
                [
                    TYPE_READ if r[2] is read else codes[r[2]]
                    for r in block
                ],
            ),
            array("q", [r[3] for r in block]),
        )


def iter_chunks(
    source: ChunkSource, chunk_size: int = DEFAULT_CHUNK_RECORDS
) -> Iterator[AccessChunk]:
    """Yield chunks from *source*, which may already be chunked.

    Pre-chunked sources (workload chunk emission, the blocked trace
    decoder) pass through untouched; record streams are packed.
    """
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return
    if isinstance(first, AccessChunk):
        yield first
        for item in iterator:
            if not isinstance(item, AccessChunk):
                raise SimulationError(
                    "mixed chunk/record access stream; chunk sources must "
                    "yield AccessChunk blocks exclusively"
                )
            yield item
        return

    def _chain() -> Iterator[AccessRecord]:
        yield first
        yield from iterator

    yield from chunk_records(_chain(), chunk_size)


class _Classification:
    """Vector classification of a chunk remainder ``[offset, n)``."""

    __slots__ = ("offset", "ok", "lines", "l1_slot", "l2_slot", "chan", "tslot", "nz")

    def __init__(self, offset, ok, lines, l1_slot, l2_slot, chan, tslot, nz):
        self.offset = offset
        self.ok = ok
        self.lines = lines
        self.l1_slot = l1_slot
        self.l2_slot = l2_slot
        self.chan = chan
        self.tslot = tslot
        #: Local indices (ascending) of residue-classified accesses.
        self.nz = nz


class BatchedMachine(PackedMachine):
    """Packed machine with a chunked, vectorised hit path.

    Everything the packed machine does is inherited unchanged — the
    per-access entry point, the packed miss path, the structural-defer
    knob.  :meth:`perform_chunk` adds the columnar entry point used by
    the batched engine; residue accesses funnel back into the inherited
    :meth:`perform_access`, so snapshots stay bit-identical.
    """

    def __init__(
        self,
        config: SystemConfig,
        structural_defer: Union[str, Iterable[str], None] = None,
        chunk_records: Optional[int] = None,
    ) -> None:
        super().__init__(config, structural_defer=structural_defer)
        if chunk_records is None:
            chunk_records = int(
                os.environ.get("REPRO_BATCH_CHUNK", DEFAULT_CHUNK_RECORDS)
            )
        if chunk_records <= 0:
            raise ConfigurationError("chunk size must be positive")
        self.chunk_records = chunk_records
        self._reclass_limit = int(
            os.environ.get("REPRO_BATCH_RECLASS_LIMIT", DEFAULT_RECLASS_LIMIT)
        )
        # Chunk-path accounting (batch_summary / batched_residue_ratio).
        self.batch_chunks = 0
        self.batch_accesses = 0
        self.batch_bulk_hits = 0
        self.batch_residue = 0
        self.batch_reclassifies = 0
        self.batch_fallback_accesses = 0

        page_size = config.os.page_size
        self._numpy = None if os.environ.get("REPRO_BATCH_FORCE_FALLBACK") else _np
        self._vector_ok = (
            self._numpy is not None
            and config.core.replacement == "lru"
            and page_size & (page_size - 1) == 0
            and _is_dyadic(self._cache_latency)
        )
        if self._vector_ok:
            self._bind_vector_state(page_size)

    # ------------------------------------------------------------------
    # Vector-path state
    # ------------------------------------------------------------------
    def _bind_vector_state(self, page_size: int) -> None:
        np = self._numpy
        self._page_shift = page_size.bit_length() - 1
        self._page_off_mask = page_size - 1
        self._line_and_mask = ~(self.config.line_size - 1)
        # Channel layout: channel = core * 2 + is_instruction.
        self._chan_caches = []
        self._chan_tags = []
        self._chan_stamps = []
        for node in self.nodes:
            for cache in (node.caches.l1d, node.caches.l1i):
                self._chan_caches.append(cache)
                self._chan_tags.append(np.frombuffer(cache.tags, dtype=np.int64))
                self._chan_stamps.append(np.frombuffer(cache.stamps, dtype=np.int64))
        self._l2_caches = [node.caches.l2 for node in self.nodes]
        self._l2_tags = [np.frombuffer(c.tags, dtype=np.int64) for c in self._l2_caches]
        self._l2_states = [
            np.frombuffer(c.states, dtype=np.uint8) for c in self._l2_caches
        ]
        max_assoc = max(
            max(c.associativity for c in self._chan_caches),
            max(c.associativity for c in self._l2_caches),
        )
        self._ways = np.arange(max_assoc, dtype=np.int64)
        self._can_write_lut = np.array(CODE_CAN_WRITE, dtype=bool)
        # Direct-mapped translation table shadowing the allocator memo:
        # packed (pid, vpage) keys, frame bases, and the (table_stats,
        # mapping) pair whose counters a bulk hit commit must maintain.
        self._tkeys = np.full(_TBL, -1, dtype=np.int64)
        self._tframes = np.zeros(_TBL, dtype=np.int64)
        self._tstats: List[Optional[tuple]] = [None] * _TBL
        # Counters whose delta reveals a displaced line (see module doc).
        self._evict_counters = []
        for node in self.nodes:
            caches = node.caches
            self._evict_counters.extend((caches.l1i, caches.l1d, caches.l2))
        self._probe_filters = [node.probe_filter for node in self.nodes]

    def _disturbance_stamp(self) -> int:
        """Monotone counter summarising every line-displacing event."""
        total = self.translation_fills
        for cache in self._evict_counters:
            total += cache.evictions
        for pf in self._probe_filters:
            total += pf.evictions
        return total

    def _after_restore(self) -> None:
        """Invalidate restore-stale vector-path caches (checkpoint hook).

        The numpy views bound by :meth:`_bind_vector_state` stay attached
        (restore slice-assigns into the same buffers), but the
        direct-mapped translation shadow holds ``(table_stats, mapping)``
        object references from before the restore; committing counters
        into those orphans would silently diverge the snapshot.  Clearing
        the shadow forces re-installation from the restored memo.
        """
        if self._vector_ok:
            self._tkeys[:] = -1
            self._tframes[:] = 0
            self._tstats[:] = [None] * _TBL

    # ------------------------------------------------------------------
    # Chunk entry point
    # ------------------------------------------------------------------
    def perform_chunk(
        self,
        chunk: AccessChunk,
        work_per_access_ns: float,
        limit: Optional[int] = None,
    ) -> int:
        """Replay one chunk (clock protocol included); return accesses run.

        Applies exactly the per-record clock/instruction accounting of
        :meth:`Simulator.run` — bulk for committed hit runs, sequential
        for residue — so a chunked run and a per-record run of the same
        stream produce bit-identical snapshots at chunk boundaries.
        *limit* truncates the chunk (a ``max_accesses`` cut mid-chunk).
        """
        n = len(chunk)
        if limit is not None and limit < n:
            chunk = chunk.truncated(limit)
            n = limit
        if n == 0:
            return 0
        self.batch_chunks += 1
        self.batch_accesses += n
        if not self._vector_ok or not _is_dyadic(work_per_access_ns):
            self._replay_slice(chunk, 0, n, work_per_access_ns)
            self.batch_fallback_accesses += n
            return n
        self._perform_chunk_vector(chunk, n, work_per_access_ns)
        return n

    # ------------------------------------------------------------------
    # Sequential fallback / residue replay
    # ------------------------------------------------------------------
    def _replay_one(
        self, core: int, process_id: int, vaddr: int, type_code: int, work_ns: float
    ) -> None:
        if core >= self._core_count or core < 0:
            raise SimulationError(
                f"trace references core {core} but the machine has "
                f"{self._core_count} cores"
            )
        clock = self._clocks[core]
        clock.instructions += 1
        clock.now_ns += work_ns
        latency = self.perform_access(
            core,
            process_id,
            vaddr,
            type_code == TYPE_WRITE,
            type_code == TYPE_INSTRUCTION,
        )
        clock.now_ns += latency
        clock.stall_ns += latency

    def _replay_slice(
        self, chunk: AccessChunk, start: int, stop: int, work_ns: float
    ) -> None:
        cores = chunk.cores
        vaddrs = chunk.vaddrs
        types = chunk.types
        pids = chunk.pids
        for i in range(start, stop):
            self._replay_one(cores[i], pids[i], vaddrs[i], types[i], work_ns)

    # ------------------------------------------------------------------
    # Vector path
    # ------------------------------------------------------------------
    def _perform_chunk_vector(self, chunk: AccessChunk, n: int, work_ns: float) -> None:
        np = self._numpy
        cores = np.frombuffer(chunk.cores, dtype=np.int64, count=n)
        vaddrs = np.frombuffer(chunk.vaddrs, dtype=np.int64, count=n)
        types = np.frombuffer(chunk.types, dtype=np.int64, count=n)
        pids = np.frombuffer(chunk.pids, dtype=np.int64, count=n)

        bad = (cores < 0) | (cores >= self._core_count)
        if bad.any():
            first_bad = int(np.argmax(bad))
            if first_bad:
                self._perform_chunk_vector(chunk, first_bad, work_ns)
            raise SimulationError(
                f"trace references core {int(cores[first_bad])} but the "
                f"machine has {self._core_count} cores"
            )

        cls = self._classify(cores, vaddrs, types, pids, 0, n)
        if cls is None:
            # Exotic address/pid ranges: stay sequential for this chunk.
            self._replay_slice(chunk, 0, n, work_ns)
            self.batch_fallback_accesses += n
            return

        c_cores = chunk.cores
        c_vaddrs = chunk.vaddrs
        c_types = chunk.types
        c_pids = chunk.pids
        page_size = self.config.os.page_size
        memo = self._translation_memo
        reclassifies = 0
        poison_all: set = set()
        poison_write: set = set()
        poison_all_arr = poison_write_arr = None
        nz = cls.nz
        nz_ptr = 0
        pos = 0
        # Exponential-backoff refresh: once enough residue accesses since
        # the last classification displaced nothing (typical of cold
        # warm-up, where fills land in free ways), the stale all-miss
        # classification is rebuilt so the now-resident lines classify as
        # hits.  Doubling the threshold bounds refreshes at O(log chunk)
        # even on all-miss chunks.
        unexplained_streak = 0
        refresh_at = 16
        while pos < n:
            # End of the candidate hit run: the next residue-classified
            # access at or after pos.
            rel = pos - cls.offset
            while nz_ptr < len(nz) and nz[nz_ptr] < rel:
                nz_ptr += 1
            run_end = int(nz[nz_ptr]) + cls.offset if nz_ptr < len(nz) else n
            # Poisoned lines demote classified hits back to residue.
            if run_end > pos and (poison_all or poison_write):
                a = pos - cls.offset
                b = run_end - cls.offset
                run_lines = cls.lines[a:b]
                hazard = None
                if poison_all:
                    if poison_all_arr is None:
                        poison_all_arr = np.fromiter(
                            poison_all, dtype=np.int64, count=len(poison_all)
                        )
                    hazard = np.isin(run_lines, poison_all_arr)
                if poison_write:
                    if poison_write_arr is None:
                        poison_write_arr = np.fromiter(
                            poison_write, dtype=np.int64, count=len(poison_write)
                        )
                    write_hazard = (types[pos:run_end] == TYPE_WRITE) & np.isin(
                        run_lines, poison_write_arr
                    )
                    hazard = write_hazard if hazard is None else hazard | write_hazard
                if hazard is not None and hazard.any():
                    run_end = pos + int(np.argmax(hazard))
            if run_end > pos:
                self._commit_run(cls, cores, types, pos, run_end, work_ns)
                self.batch_bulk_hits += run_end - pos
                pos = run_end
                if pos >= n:
                    break
            # Residue access at pos: replay sequentially, then decide how
            # much of the classification survives.
            before = self._disturbance_stamp()
            core = c_cores[pos]
            pid = c_pids[pos]
            vaddr = c_vaddrs[pos]
            type_code = c_types[pos]
            self._replay_one(core, pid, vaddr, type_code, work_ns)
            self.batch_residue += 1
            pos += 1
            if pos >= n:
                break
            refresh = False
            if self._disturbance_stamp() != before:
                # A line was displaced somewhere (or a page went warm):
                # classifications past this point are suspect — rebuild.
                reclassifies += 1
                unexplained_streak = 0
                if reclassifies > self._reclass_limit:
                    self._replay_slice(chunk, pos, n, work_ns)
                    self.batch_residue += n - pos
                    return
                refresh = True
            else:
                # Nothing was displaced: only copies of the accessed line
                # can have been invalidated (write/upgrade) or downgraded
                # (read), so poison that one line.  A cold translation has
                # no classified hits to its (unique) frame — skip it.
                entry = memo.get((pid, vaddr // page_size))
                if entry is not None:
                    line = (
                        entry[0] + (vaddr % page_size)
                    ) & self._line_and_mask
                    if type_code == TYPE_WRITE:
                        if line not in poison_all:
                            poison_all.add(line)
                            poison_all_arr = None
                    else:
                        if line not in poison_write:
                            poison_write.add(line)
                            poison_write_arr = None
                unexplained_streak += 1
                if unexplained_streak >= refresh_at:
                    refresh_at <<= 1
                    unexplained_streak = 0
                    refresh = True
            if refresh:
                self.batch_reclassifies += 1
                cls = self._classify(cores, vaddrs, types, pids, pos, n)
                if cls is None:
                    self._replay_slice(chunk, pos, n, work_ns)
                    self.batch_fallback_accesses += n - pos
                    return
                nz = cls.nz
                nz_ptr = 0
                poison_all.clear()
                poison_write.clear()
                poison_all_arr = poison_write_arr = None

    def _install_translations(self, keys, matched) -> None:
        """Pull missing memo entries into the direct-mapped table."""
        np = self._numpy
        missing = np.unique(keys[~matched])
        memo = self._translation_memo
        vpage_mask = (1 << _VPAGE_BITS) - 1
        for key in missing:
            key = int(key)
            entry = memo.get((key >> _VPAGE_BITS, key & vpage_mask))
            if entry is None:
                continue  # cold translation: stays residue
            slot = (key ^ (key >> 39)) & (_TBL - 1)
            self._tkeys[slot] = key
            self._tframes[slot] = entry[0]
            self._tstats[slot] = (entry[2], entry[1])

    def _classify(self, cores, vaddrs, types, pids, start, n):
        """Vector-classify accesses ``[start, n)``; None = stay sequential."""
        np = self._numpy
        sl = slice(start, n)
        v = vaddrs[sl]
        p = pids[sl]
        t = types[sl]
        vpage = v >> self._page_shift
        if (
            int(v.min()) < 0
            or int(p.min()) < 0
            or int(p.max()) >= (1 << (63 - _VPAGE_BITS))
            or int(vpage.max()) >= (1 << _VPAGE_BITS)
        ):
            return None
        keys = (p << _VPAGE_BITS) | vpage
        hashes = (keys ^ (keys >> 39)) & (_TBL - 1)
        matched = self._tkeys[hashes] == keys
        if not matched.all():
            self._install_translations(keys, matched)
            matched = self._tkeys[hashes] == keys
        paddr = self._tframes[hashes] + (v & self._page_off_mask)
        lines = paddr & self._line_and_mask

        ok = matched.copy()
        m = n - start
        l1_slot = np.zeros(m, dtype=np.int64)
        l2_slot = np.full(m, -1, dtype=np.int64)
        chan = (cores[sl] << 1) | (t == TYPE_INSTRUCTION)
        chan_counts = np.bincount(chan, minlength=len(self._chan_caches))
        for ch in np.nonzero(chan_counts)[0]:
            ch = int(ch)
            idx = np.nonzero(chan == ch)[0]
            cache = self._chan_caches[ch]
            assoc = cache.associativity
            sub_lines = lines[idx]
            base = ((sub_lines >> cache.line_shift) & cache.set_mask) * assoc
            flat = base[:, None] + self._ways[:assoc]
            eq = self._chan_tags[ch][flat] == sub_lines[:, None]
            found = eq.any(axis=1)
            l1_slot[idx] = base + np.argmax(eq, axis=1)
            sub_ok = found
            if ch & 1 == 0:  # data channel: writes need a writable L2 copy
                writes = np.nonzero(t[idx] == TYPE_WRITE)[0]
                if writes.size:
                    l2 = self._l2_caches[ch >> 1]
                    l2_assoc = l2.associativity
                    write_lines = sub_lines[writes]
                    l2_base = (
                        (write_lines >> l2.line_shift) & l2.set_mask
                    ) * l2_assoc
                    l2_flat = l2_base[:, None] + self._ways[:l2_assoc]
                    l2_eq = self._l2_tags[ch >> 1][l2_flat] == write_lines[:, None]
                    l2_found = l2_eq.any(axis=1)
                    slots = l2_base + np.argmax(l2_eq, axis=1)
                    writable = l2_found & self._can_write_lut[
                        self._l2_states[ch >> 1][slots]
                    ]
                    l2_slot[idx[writes]] = slots
                    sub_ok = sub_ok.copy()
                    sub_ok[writes] &= writable
            ok[idx] &= sub_ok
        return _Classification(
            offset=start,
            ok=ok,
            lines=lines,
            l1_slot=l1_slot,
            l2_slot=l2_slot,
            chan=chan,
            tslot=hashes,
            nz=np.nonzero(~ok)[0],
        )

    def _commit_run(self, cls, cores, types, pos, end, work_ns: float) -> None:
        """Bulk-apply a run ``[pos, end)`` of classified L1 hits."""
        np = self._numpy
        a = pos - cls.offset
        b = end - cls.offset
        per_access = work_ns + self._cache_latency
        latency = self._cache_latency

        core_counts = np.bincount(cores[pos:end], minlength=self._core_count)
        for core in np.nonzero(core_counts)[0]:
            k = int(core_counts[core])
            clock = self._clocks[int(core)]
            clock.instructions += k
            clock.memory_accesses += k
            clock.now_ns += k * per_access
            clock.stall_ns += k * latency

        chans = cls.chan[a:b]
        slots = cls.l1_slot[a:b]
        chan_counts = np.bincount(chans, minlength=len(self._chan_caches))
        run_types = types[pos:end]
        l2_slots = cls.l2_slot[a:b]
        for ch in np.nonzero(chan_counts)[0]:
            ch = int(ch)
            k = int(chan_counts[ch])
            cache = self._chan_caches[ch]
            idx = np.nonzero(chans == ch)[0]
            prev = cache.stamp
            # Stamps are assigned in chunk order (prev+1 … prev+k); the
            # sequence is strictly increasing, so maximum-at == last-wins
            # == the sequential final state.
            np.maximum.at(
                self._chan_stamps[ch],
                slots[idx],
                prev + 1 + np.arange(k, dtype=np.int64),
            )
            cache.stamp = prev + k
            cache.hits += k
            if ch & 1 == 0:
                writes = idx[run_types[idx] == TYPE_WRITE]
                if writes.size:
                    # Committed write hits: the silent L2 upgrade to
                    # MODIFIED (writability already verified).
                    self._l2_states[ch >> 1][l2_slots[writes]] = STATE_MODIFIED

        t_counts = np.bincount(cls.tslot[a:b], minlength=_TBL)
        for slot in np.nonzero(t_counts)[0]:
            table_stats, mapping = self._tstats[int(slot)]
            count = int(t_counts[slot])
            table_stats.lookups += count
            mapping.touches += count

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def batched_residue_ratio(self) -> float:
        """Fraction of chunked accesses that replayed per-access."""
        total = self.batch_accesses
        if total == 0:
            return 0.0
        return (self.batch_residue + self.batch_fallback_accesses) / total

    def batch_summary(self) -> dict:
        """Chunk-path counters (reports, benches, tests)."""
        return {
            "chunks": self.batch_chunks,
            "accesses": self.batch_accesses,
            "bulk_hits": self.batch_bulk_hits,
            "residue": self.batch_residue,
            "fallback_accesses": self.batch_fallback_accesses,
            "reclassifies": self.batch_reclassifies,
            "residue_ratio": self.batched_residue_ratio,
            "vector_path": self._vector_ok,
            "chunk_records": self.chunk_records,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedMachine(nodes={len(self.nodes)}, "
            f"policy={self.config.directory_policy}, "
            f"chunk={self.chunk_records})"
        )
