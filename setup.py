"""Setuptools metadata.

The core package is dependency-free on purpose: every engine has a
pure-stdlib path, so the package installs in offline and minimal
environments.  The ``fast`` extra (``pip install .[fast]``) pulls in
numpy, which the batched engine (:mod:`repro.system.batchcore`) and the
blocked-trace decoder use to vectorise the hit path — without it they
degrade to the bit-identical pure-``array`` fallback (see
``REPRO_BATCH_FORCE_FALLBACK`` in ``docs/performance.md``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=(
        "Reproduction of a probe-filter coherence study with reference, "
        "packed and batched simulation engines"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    extras_require={
        "fast": ["numpy"],
    },
)
