"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package needed for PEP 660 editable installs (pip then falls
back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
